"""Country database for the measurement study.

Each record carries the attributes the reproduction needs:

* ``centroid`` — drives geodesic distance in the latency model;
* ``area_kkm2`` — controls how widely synthetic probes scatter inside the
  country (thousands of square kilometres);
* ``population_m`` / ``internet_share`` — used for reporting what share of
  the world's population various latency bounds cover (paper abstract:
  "majority of the world's population");
* ``infra_tier`` — domestic network infrastructure quality, 1 (excellent)
  to 4 (poor); feeds last-mile latency and path inflation in ``repro.net``;
* ``atlas_probes`` — number of probes the synthetic Atlas population places
  in the country.  The distribution mirrors the real platform's heavy
  European bias.  Exactly 166 countries have at least one probe and the
  total exceeds 3200, matching the paper's §4.1 footprint.

Values are approximate circa-2019 figures; the latency model only depends on
their relative magnitudes, never on their exact decimals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import UnknownCountryError
from repro.geo.continents import get_continent
from repro.geo.coordinates import LatLon


@dataclass(frozen=True)
class Country:
    """A country (or territory) participating in the study."""

    iso2: str
    name: str
    continent: str
    centroid: LatLon
    area_kkm2: float
    population_m: float
    internet_share: float
    infra_tier: int
    atlas_probes: int

    @property
    def internet_users_m(self) -> float:
        """Estimated number of Internet users, in millions."""
        return self.population_m * self.internet_share

    @property
    def scatter_radius_km(self) -> float:
        """Radius within which synthetic probes scatter around the centroid.

        Approximated as half the radius of a circle with the country's area,
        capped so continental giants (RU, CA, US) do not scatter probes into
        empty wilderness: population clusters are far smaller than the
        landmass.
        """
        radius = (self.area_kkm2 * 1000.0 / 3.14159) ** 0.5 * 0.5
        return min(radius, 900.0)


# Record layout:
#  iso2, name, continent, lat, lon, area_kkm2, pop_m, net_share, tier, probes
_RAW: Tuple[Tuple[str, str, str, float, float, float, float, float, int, int], ...] = (
    # --- Europe -----------------------------------------------------------
    ("DE", "Germany", "EU", 51.2, 10.4, 357, 83.0, 0.93, 1, 420),
    ("FR", "France", "EU", 46.6, 2.5, 549, 67.0, 0.91, 1, 290),
    ("GB", "United Kingdom", "EU", 54.0, -2.5, 244, 66.8, 0.95, 1, 200),
    ("NL", "Netherlands", "EU", 52.2, 5.5, 42, 17.3, 0.96, 1, 160),
    ("RU", "Russia", "EU", 55.8, 49.1, 17098, 144.4, 0.83, 2, 120),
    ("IT", "Italy", "EU", 42.9, 12.5, 301, 60.3, 0.85, 1, 105),
    ("CZ", "Czechia", "EU", 49.8, 15.5, 79, 10.7, 0.88, 1, 80),
    ("ES", "Spain", "EU", 40.3, -3.7, 506, 47.1, 0.93, 1, 70),
    ("CH", "Switzerland", "EU", 46.8, 8.2, 41, 8.6, 0.96, 1, 70),
    ("BE", "Belgium", "EU", 50.6, 4.7, 31, 11.5, 0.94, 1, 65),
    ("SE", "Sweden", "EU", 60.1, 15.0, 450, 10.3, 0.96, 1, 65),
    ("PL", "Poland", "EU", 52.1, 19.4, 313, 38.0, 0.85, 2, 65),
    ("AT", "Austria", "EU", 47.6, 14.1, 84, 8.9, 0.90, 1, 55),
    ("UA", "Ukraine", "EU", 49.0, 31.4, 604, 44.4, 0.75, 2, 50),
    ("FI", "Finland", "EU", 62.9, 26.0, 338, 5.5, 0.96, 1, 45),
    ("DK", "Denmark", "EU", 56.0, 9.6, 43, 5.8, 0.98, 1, 40),
    ("NO", "Norway", "EU", 61.2, 8.8, 324, 5.3, 0.98, 1, 40),
    ("RO", "Romania", "EU", 45.9, 24.9, 238, 19.4, 0.79, 2, 32),
    ("GR", "Greece", "EU", 39.1, 22.9, 132, 10.7, 0.78, 2, 32),
    ("IE", "Ireland", "EU", 53.2, -8.1, 70, 4.9, 0.92, 1, 30),
    ("PT", "Portugal", "EU", 39.6, -8.0, 92, 10.3, 0.78, 1, 28),
    ("BG", "Bulgaria", "EU", 42.8, 25.2, 111, 7.0, 0.70, 2, 26),
    ("HU", "Hungary", "EU", 47.2, 19.4, 93, 9.8, 0.84, 2, 26),
    ("SK", "Slovakia", "EU", 48.7, 19.5, 49, 5.5, 0.83, 2, 18),
    ("HR", "Croatia", "EU", 45.1, 15.2, 57, 4.1, 0.79, 2, 14),
    ("SI", "Slovenia", "EU", 46.1, 14.8, 20, 2.1, 0.83, 1, 12),
    ("RS", "Serbia", "EU", 44.2, 20.8, 88, 7.0, 0.78, 2, 12),
    ("LU", "Luxembourg", "EU", 49.8, 6.1, 3, 0.6, 0.97, 1, 12),
    ("LT", "Lithuania", "EU", 55.3, 23.9, 65, 2.8, 0.82, 2, 10),
    ("EE", "Estonia", "EU", 58.7, 25.5, 45, 1.3, 0.90, 1, 10),
    ("LV", "Latvia", "EU", 56.9, 24.9, 65, 1.9, 0.87, 2, 9),
    ("BY", "Belarus", "EU", 53.7, 28.0, 208, 9.4, 0.79, 2, 8),
    ("IS", "Iceland", "EU", 64.9, -18.6, 103, 0.36, 0.99, 1, 8),
    ("CY", "Cyprus", "EU", 35.0, 33.2, 9, 1.2, 0.86, 2, 5),
    ("MT", "Malta", "EU", 35.9, 14.4, 0.3, 0.5, 0.86, 1, 4),
    ("MD", "Moldova", "EU", 47.2, 28.5, 34, 2.7, 0.76, 3, 4),
    ("BA", "Bosnia and Herzegovina", "EU", 44.2, 17.8, 51, 3.3, 0.72, 3, 4),
    ("MK", "North Macedonia", "EU", 41.6, 21.7, 26, 2.1, 0.79, 3, 3),
    ("AL", "Albania", "EU", 41.1, 20.1, 29, 2.9, 0.72, 3, 3),
    ("ME", "Montenegro", "EU", 42.8, 19.3, 14, 0.6, 0.74, 3, 2),
    ("AD", "Andorra", "EU", 42.5, 1.5, 0.5, 0.08, 0.92, 1, 1),
    ("MC", "Monaco", "EU", 43.7, 7.4, 0.002, 0.04, 0.97, 1, 0),
    ("LI", "Liechtenstein", "EU", 47.2, 9.5, 0.2, 0.04, 0.98, 1, 0),
    ("SM", "San Marino", "EU", 43.9, 12.5, 0.06, 0.03, 0.60, 1, 0),
    # --- North America ----------------------------------------------------
    ("US", "United States", "NA", 39.8, -98.6, 9834, 328.2, 0.89, 1, 330),
    ("CA", "Canada", "NA", 56.1, -106.3, 9985, 37.6, 0.93, 1, 75),
    ("BM", "Bermuda", "NA", 32.3, -64.8, 0.05, 0.06, 0.98, 2, 0),
    ("GL", "Greenland", "NA", 71.7, -42.6, 2166, 0.06, 0.69, 3, 0),
    # --- Latin America (paper groups Central/South America + Caribbean) ---
    ("BR", "Brazil", "SA", -14.2, -51.9, 8516, 211.0, 0.74, 3, 50),
    ("MX", "Mexico", "SA", 23.6, -102.5, 1964, 127.6, 0.70, 3, 18),
    ("AR", "Argentina", "SA", -38.4, -63.6, 2780, 44.9, 0.80, 3, 16),
    ("CL", "Chile", "SA", -35.7, -71.5, 756, 19.0, 0.82, 2, 13),
    ("CO", "Colombia", "SA", 4.6, -74.3, 1142, 50.3, 0.65, 3, 9),
    ("PE", "Peru", "SA", -9.2, -75.0, 1285, 32.5, 0.60, 3, 6),
    ("UY", "Uruguay", "SA", -32.5, -55.8, 176, 3.5, 0.83, 2, 5),
    ("EC", "Ecuador", "SA", -1.8, -78.2, 276, 17.4, 0.57, 3, 4),
    ("CR", "Costa Rica", "SA", 9.7, -83.8, 51, 5.0, 0.81, 3, 4),
    ("VE", "Venezuela", "SA", 6.4, -66.6, 912, 28.5, 0.64, 4, 3),
    ("PA", "Panama", "SA", 8.5, -80.8, 75, 4.2, 0.64, 3, 3),
    ("BO", "Bolivia", "SA", -16.3, -63.6, 1099, 11.5, 0.44, 4, 2),
    ("PY", "Paraguay", "SA", -23.4, -58.4, 407, 7.0, 0.65, 4, 2),
    ("GT", "Guatemala", "SA", 15.8, -90.2, 109, 17.6, 0.41, 4, 2),
    ("DO", "Dominican Republic", "SA", 18.7, -70.2, 49, 10.7, 0.74, 3, 2),
    ("TT", "Trinidad and Tobago", "SA", 10.7, -61.2, 5, 1.4, 0.77, 3, 2),
    ("HN", "Honduras", "SA", 15.2, -86.2, 113, 9.7, 0.32, 4, 1),
    ("SV", "El Salvador", "SA", 13.8, -88.9, 21, 6.5, 0.34, 4, 1),
    ("NI", "Nicaragua", "SA", 12.9, -85.2, 130, 6.5, 0.28, 4, 1),
    ("CU", "Cuba", "SA", 21.5, -77.8, 110, 11.3, 0.57, 4, 1),
    ("JM", "Jamaica", "SA", 18.1, -77.3, 11, 2.9, 0.55, 3, 1),
    ("BS", "Bahamas", "SA", 25.0, -77.4, 14, 0.39, 0.85, 3, 1),
    ("BB", "Barbados", "SA", 13.2, -59.5, 0.4, 0.29, 0.82, 3, 1),
    ("HT", "Haiti", "SA", 19.0, -72.7, 28, 11.3, 0.32, 4, 0),
    ("BZ", "Belize", "SA", 17.2, -88.7, 23, 0.39, 0.47, 4, 0),
    ("SR", "Suriname", "SA", 4.0, -56.0, 164, 0.58, 0.49, 4, 0),
    ("GY", "Guyana", "SA", 4.9, -58.9, 215, 0.78, 0.37, 4, 0),
    ("CW", "Curacao", "SA", 12.2, -69.0, 0.4, 0.16, 0.68, 3, 0),
    # --- Asia ---------------------------------------------------------------
    ("JP", "Japan", "AS", 36.2, 138.3, 378, 126.3, 0.93, 1, 50),
    ("IN", "India", "AS", 21.0, 78.0, 3287, 1366.4, 0.41, 3, 40),
    ("SG", "Singapore", "AS", 1.35, 103.8, 0.7, 5.7, 0.89, 1, 24),
    ("TR", "Turkey", "AS", 39.0, 35.2, 784, 83.4, 0.74, 2, 22),
    ("CN", "China", "AS", 35.0, 105.0, 9597, 1397.7, 0.64, 2, 18),
    ("IL", "Israel", "AS", 31.4, 35.0, 21, 9.1, 0.88, 1, 18),
    ("HK", "Hong Kong", "AS", 22.3, 114.2, 1.1, 7.5, 0.92, 1, 14),
    ("ID", "Indonesia", "AS", -2.5, 118.0, 1905, 270.6, 0.48, 3, 14),
    ("KR", "South Korea", "AS", 36.5, 127.8, 100, 51.7, 0.96, 1, 13),
    ("TH", "Thailand", "AS", 15.1, 101.0, 513, 69.6, 0.67, 3, 11),
    ("IR", "Iran", "AS", 32.4, 53.7, 1648, 82.9, 0.70, 3, 10),
    ("MY", "Malaysia", "AS", 4.2, 102.0, 331, 31.9, 0.84, 2, 9),
    ("AE", "United Arab Emirates", "AS", 23.4, 53.8, 84, 9.8, 0.99, 1, 9),
    ("TW", "Taiwan", "AS", 23.7, 121.0, 36, 23.6, 0.90, 1, 8),
    ("PH", "Philippines", "AS", 12.9, 121.8, 300, 108.1, 0.43, 3, 7),
    ("VN", "Vietnam", "AS", 14.1, 108.3, 331, 96.5, 0.69, 3, 7),
    ("PK", "Pakistan", "AS", 30.4, 69.3, 881, 216.6, 0.25, 4, 6),
    ("SA", "Saudi Arabia", "AS", 23.9, 45.1, 2150, 34.3, 0.93, 2, 6),
    ("KZ", "Kazakhstan", "AS", 48.0, 66.9, 2725, 18.5, 0.79, 3, 6),
    ("BD", "Bangladesh", "AS", 23.7, 90.4, 148, 163.0, 0.15, 4, 4),
    ("GE", "Georgia", "AS", 42.3, 43.4, 70, 3.7, 0.69, 3, 4),
    ("LK", "Sri Lanka", "AS", 7.9, 80.8, 66, 21.8, 0.34, 3, 3),
    ("NP", "Nepal", "AS", 28.4, 84.1, 147, 28.6, 0.34, 4, 3),
    ("JO", "Jordan", "AS", 31.3, 36.4, 89, 10.1, 0.67, 3, 3),
    ("AM", "Armenia", "AS", 40.1, 45.0, 30, 3.0, 0.65, 3, 3),
    ("AZ", "Azerbaijan", "AS", 40.1, 47.6, 87, 10.0, 0.80, 3, 3),
    ("UZ", "Uzbekistan", "AS", 41.4, 64.6, 447, 33.6, 0.55, 4, 3),
    ("MM", "Myanmar", "AS", 21.9, 96.0, 677, 54.0, 0.31, 4, 2),
    ("KH", "Cambodia", "AS", 12.5, 104.9, 181, 16.5, 0.40, 4, 2),
    ("MN", "Mongolia", "AS", 46.9, 103.8, 1564, 3.2, 0.51, 4, 2),
    ("KG", "Kyrgyzstan", "AS", 41.2, 74.8, 200, 6.5, 0.38, 4, 2),
    ("LB", "Lebanon", "AS", 33.9, 35.9, 10, 6.9, 0.78, 3, 2),
    ("KW", "Kuwait", "AS", 29.3, 47.5, 18, 4.2, 0.99, 2, 2),
    ("QA", "Qatar", "AS", 25.3, 51.2, 12, 2.8, 0.99, 1, 2),
    ("BH", "Bahrain", "AS", 26.0, 50.5, 0.8, 1.6, 0.99, 1, 2),
    ("OM", "Oman", "AS", 21.5, 55.9, 310, 5.0, 0.92, 2, 2),
    ("IQ", "Iraq", "AS", 33.2, 43.7, 438, 39.3, 0.49, 4, 2),
    ("TJ", "Tajikistan", "AS", 38.9, 71.3, 141, 9.3, 0.22, 4, 1),
    ("TM", "Turkmenistan", "AS", 38.9, 59.6, 488, 5.9, 0.21, 4, 1),
    ("LA", "Laos", "AS", 19.9, 102.5, 237, 7.2, 0.26, 4, 1),
    ("BT", "Bhutan", "AS", 27.5, 90.4, 38, 0.76, 0.48, 4, 1),
    ("MV", "Maldives", "AS", 3.2, 73.2, 0.3, 0.53, 0.63, 3, 1),
    ("BN", "Brunei", "AS", 4.5, 114.7, 6, 0.43, 0.95, 2, 1),
    ("AF", "Afghanistan", "AS", 33.9, 67.7, 653, 38.0, 0.14, 4, 0),
    ("YE", "Yemen", "AS", 15.6, 48.0, 528, 29.2, 0.27, 4, 0),
    ("SY", "Syria", "AS", 34.8, 39.0, 185, 17.1, 0.34, 4, 0),
    ("PS", "Palestine", "AS", 31.9, 35.2, 6, 4.7, 0.65, 4, 0),
    ("MO", "Macao", "AS", 22.2, 113.5, 0.03, 0.64, 0.84, 1, 0),
    # --- Oceania ------------------------------------------------------------
    ("AU", "Australia", "OC", -25.3, 133.8, 7692, 25.4, 0.87, 1, 55),
    ("NZ", "New Zealand", "OC", -41.8, 172.8, 268, 4.9, 0.91, 1, 22),
    ("FJ", "Fiji", "OC", -17.7, 178.0, 18, 0.89, 0.50, 4, 2),
    ("NC", "New Caledonia", "OC", -21.3, 165.6, 19, 0.27, 0.82, 3, 2),
    ("PF", "French Polynesia", "OC", -17.7, -149.4, 4, 0.28, 0.73, 3, 2),
    ("PG", "Papua New Guinea", "OC", -6.3, 143.9, 463, 8.8, 0.11, 4, 1),
    ("GU", "Guam", "OC", 13.4, 144.8, 0.5, 0.17, 0.81, 2, 1),
    ("WS", "Samoa", "OC", -13.8, -172.1, 3, 0.20, 0.34, 4, 1),
    ("VU", "Vanuatu", "OC", -15.4, 166.9, 12, 0.30, 0.26, 4, 1),
    ("TO", "Tonga", "OC", -21.2, -175.2, 0.7, 0.10, 0.41, 4, 0),
    # --- Africa -------------------------------------------------------------
    ("ZA", "South Africa", "AF", -29.0, 24.7, 1221, 58.6, 0.56, 3, 28),
    ("KE", "Kenya", "AF", 0.0, 37.9, 580, 52.6, 0.23, 3, 9),
    ("NG", "Nigeria", "AF", 9.1, 8.7, 924, 201.0, 0.42, 4, 7),
    ("EG", "Egypt", "AF", 26.8, 30.8, 1002, 100.4, 0.57, 3, 7),
    ("MA", "Morocco", "AF", 31.8, -7.1, 447, 36.5, 0.74, 3, 6),
    ("TN", "Tunisia", "AF", 33.9, 9.6, 164, 11.7, 0.67, 3, 4),
    ("GH", "Ghana", "AF", 7.9, -1.0, 239, 30.4, 0.39, 4, 4),
    ("DZ", "Algeria", "AF", 28.0, 1.7, 2382, 43.1, 0.49, 4, 3),
    ("TZ", "Tanzania", "AF", -6.4, 34.9, 947, 58.0, 0.25, 4, 3),
    ("UG", "Uganda", "AF", 1.4, 32.3, 241, 44.3, 0.24, 4, 3),
    ("SN", "Senegal", "AF", 14.5, -14.5, 197, 16.3, 0.46, 4, 3),
    ("MU", "Mauritius", "AF", -20.3, 57.6, 2, 1.3, 0.64, 3, 3),
    ("CI", "Ivory Coast", "AF", 7.5, -5.5, 322, 25.7, 0.36, 4, 2),
    ("CM", "Cameroon", "AF", 7.4, 12.3, 475, 25.9, 0.23, 4, 2),
    ("ZW", "Zimbabwe", "AF", -19.0, 29.2, 391, 14.6, 0.27, 4, 2),
    ("ZM", "Zambia", "AF", -13.1, 27.8, 753, 17.9, 0.14, 4, 2),
    ("AO", "Angola", "AF", -11.2, 17.9, 1247, 31.8, 0.14, 4, 2),
    ("NA", "Namibia", "AF", -22.9, 18.5, 824, 2.5, 0.37, 3, 2),
    ("BW", "Botswana", "AF", -22.3, 24.7, 582, 2.3, 0.47, 3, 2),
    ("RE", "Reunion", "AF", -21.1, 55.5, 2.5, 0.86, 0.83, 2, 2),
    ("ET", "Ethiopia", "AF", 9.1, 40.5, 1104, 112.1, 0.19, 4, 2),
    ("RW", "Rwanda", "AF", -1.9, 29.9, 26, 12.6, 0.22, 4, 2),
    ("CD", "DR Congo", "AF", -4.0, 21.8, 2345, 86.8, 0.09, 4, 2),
    ("MZ", "Mozambique", "AF", -18.7, 35.5, 799, 30.4, 0.10, 4, 1),
    ("MG", "Madagascar", "AF", -18.8, 47.0, 587, 27.0, 0.10, 4, 1),
    ("SD", "Sudan", "AF", 12.9, 30.2, 1886, 42.8, 0.31, 4, 1),
    ("LY", "Libya", "AF", 26.3, 17.2, 1760, 6.8, 0.22, 4, 1),
    ("BJ", "Benin", "AF", 9.3, 2.3, 115, 11.8, 0.20, 4, 1),
    ("BF", "Burkina Faso", "AF", 12.2, -1.6, 274, 20.3, 0.16, 4, 1),
    ("ML", "Mali", "AF", 17.6, -4.0, 1240, 19.7, 0.13, 4, 1),
    ("NE", "Niger", "AF", 17.6, 8.1, 1267, 23.3, 0.05, 4, 1),
    ("TD", "Chad", "AF", 15.5, 18.7, 1284, 15.9, 0.07, 4, 1),
    ("TG", "Togo", "AF", 8.6, 0.8, 57, 8.1, 0.12, 4, 1),
    ("GA", "Gabon", "AF", -0.8, 11.6, 268, 2.2, 0.50, 4, 1),
    ("CG", "Congo", "AF", -0.2, 15.8, 342, 5.4, 0.09, 4, 1),
    ("SO", "Somalia", "AF", 5.2, 46.2, 638, 15.4, 0.02, 4, 1),
    ("DJ", "Djibouti", "AF", 11.8, 42.6, 23, 0.97, 0.56, 4, 1),
    ("GM", "Gambia", "AF", 13.4, -15.3, 11, 2.3, 0.20, 4, 1),
    ("GN", "Guinea", "AF", 9.9, -9.7, 246, 12.8, 0.18, 4, 1),
    ("SL", "Sierra Leone", "AF", 8.5, -11.8, 72, 7.8, 0.09, 4, 1),
    ("LR", "Liberia", "AF", 6.4, -9.4, 111, 4.9, 0.08, 4, 1),
    ("MW", "Malawi", "AF", -13.3, 34.3, 118, 18.6, 0.14, 4, 1),
    ("LS", "Lesotho", "AF", -29.6, 28.2, 30, 2.1, 0.29, 4, 1),
    ("SZ", "Eswatini", "AF", -26.5, 31.5, 17, 1.1, 0.47, 4, 1),
    ("SC", "Seychelles", "AF", -4.7, 55.5, 0.5, 0.10, 0.59, 3, 1),
    ("CV", "Cabo Verde", "AF", 16.0, -24.0, 4, 0.55, 0.57, 4, 1),
    ("BI", "Burundi", "AF", -3.4, 29.9, 28, 11.5, 0.03, 4, 1),
    ("MR", "Mauritania", "AF", 21.0, -10.9, 1031, 4.5, 0.21, 4, 1),
)

_BY_CODE: Dict[str, Country] = {}
for _row in _RAW:
    _iso2, _name, _cont, _lat, _lon, _area, _pop, _net, _tier, _probes = _row
    get_continent(_cont)  # validate continent code eagerly
    _BY_CODE[_iso2] = Country(
        iso2=_iso2,
        name=_name,
        continent=_cont,
        centroid=LatLon(_lat, _lon),
        area_kkm2=_area,
        population_m=_pop,
        internet_share=_net,
        infra_tier=_tier,
        atlas_probes=_probes,
    )
del _row, _iso2, _name, _cont, _lat, _lon, _area, _pop, _net, _tier, _probes


def get_country(code: str) -> Country:
    """Look up a country by ISO-3166 alpha-2 code (case-insensitive)."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        raise UnknownCountryError(code) from None


def all_countries() -> Tuple[Country, ...]:
    """Every country in the database, in a stable (insertion) order."""
    return tuple(_BY_CODE.values())


def iter_countries(continent: str = None) -> Iterator[Country]:
    """Iterate countries, optionally restricted to one continent."""
    if continent is not None:
        continent = get_continent(continent).code
    for country in _BY_CODE.values():
        if continent is None or country.continent == continent:
            yield country


def countries_with_probes() -> Tuple[Country, ...]:
    """Countries hosting at least one Atlas probe (the paper's 166)."""
    return tuple(c for c in _BY_CODE.values() if c.atlas_probes > 0)


def total_probe_count() -> int:
    """Total number of synthetic Atlas probes across all countries."""
    return sum(c.atlas_probes for c in _BY_CODE.values())


def world_population_m() -> float:
    """Population covered by the database, in millions."""
    return sum(c.population_m for c in _BY_CODE.values())


def world_internet_users_m() -> float:
    """Estimated Internet users covered by the database, in millions."""
    return sum(c.internet_users_m for c in _BY_CODE.values())
