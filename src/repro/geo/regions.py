"""Sub-continental regions (UN M49-style groupings).

The paper's Figure 6 discussion attributes the European latency tail to
"probes in eastern EU and countries without local or neighboring
datacenters".  This module gives that statement a precise, reusable
definition: every country carries a subregion, and analyses group by it
instead of hard-coding country sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.errors import GeoError
from repro.geo.countries import all_countries, get_country

#: subregion -> ISO2 members.  Countries absent from every set fall into
#: the continent-level default returned by :func:`subregion_of`.
SUBREGIONS: Dict[str, FrozenSet[str]] = {
    "western-europe": frozenset(
        {"GB", "IE", "FR", "BE", "NL", "LU", "DE", "CH", "AT", "LI", "MC", "AD"}
    ),
    "northern-europe": frozenset(
        {"DK", "NO", "SE", "FI", "IS", "EE", "LV", "LT"}
    ),
    "southern-europe": frozenset(
        {"PT", "ES", "IT", "MT", "SM", "GR", "CY", "SI", "HR"}
    ),
    "eastern-europe": frozenset(
        {"PL", "CZ", "SK", "HU", "RO", "BG", "RS", "BA", "MK", "AL", "ME",
         "MD", "UA", "BY", "RU"}
    ),
    "northern-america": frozenset({"US", "CA", "BM", "GL"}),
    "central-america": frozenset(
        {"MX", "GT", "BZ", "HN", "SV", "NI", "CR", "PA"}
    ),
    "caribbean": frozenset(
        {"CU", "JM", "HT", "DO", "BS", "BB", "TT", "CW"}
    ),
    "south-america": frozenset(
        {"BR", "AR", "CL", "CO", "PE", "UY", "EC", "VE", "BO", "PY", "SR", "GY"}
    ),
    "western-asia": frozenset(
        {"TR", "IL", "PS", "JO", "LB", "SY", "IQ", "SA", "AE", "QA", "BH",
         "KW", "OM", "YE", "GE", "AM", "AZ"}
    ),
    "central-asia": frozenset({"KZ", "UZ", "KG", "TJ", "TM"}),
    "southern-asia": frozenset(
        {"IN", "PK", "BD", "LK", "NP", "BT", "MV", "AF", "IR"}
    ),
    "southeastern-asia": frozenset(
        {"SG", "MY", "TH", "ID", "PH", "VN", "MM", "KH", "LA", "BN"}
    ),
    "eastern-asia": frozenset({"CN", "HK", "MO", "TW", "JP", "KR", "MN"}),
    "northern-africa": frozenset({"MA", "DZ", "TN", "LY", "EG", "SD", "MR"}),
    "western-africa": frozenset(
        {"NG", "GH", "CI", "SN", "ML", "BF", "NE", "TG", "BJ", "GM", "GN",
         "SL", "LR", "CV"}
    ),
    "eastern-africa": frozenset(
        {"KE", "TZ", "UG", "RW", "BI", "ET", "SO", "DJ", "MZ", "MG", "MW",
         "MU", "RE", "SC"}
    ),
    "middle-africa": frozenset({"CM", "TD", "CD", "CG", "GA", "AO"}),
    "southern-africa": frozenset({"ZA", "NA", "BW", "ZW", "ZM", "LS", "SZ"}),
    "australia-nz": frozenset({"AU", "NZ"}),
    "pacific-islands": frozenset(
        {"FJ", "PG", "NC", "PF", "GU", "WS", "VU", "TO"}
    ),
}

_BY_COUNTRY: Dict[str, str] = {}
for _name, _members in SUBREGIONS.items():
    for _code in _members:
        if _code in _BY_COUNTRY:
            raise GeoError(f"{_code} assigned to two subregions")
        _BY_COUNTRY[_code] = _name
del _name, _members, _code


def subregion_of(country_code: str) -> str:
    """Subregion of a country (falls back to ``other-<continent>``)."""
    country = get_country(country_code)
    return _BY_COUNTRY.get(country.iso2, f"other-{country.continent.lower()}")


def countries_in_subregion(name: str) -> Tuple[str, ...]:
    """ISO codes of a subregion's members present in the database."""
    if name not in SUBREGIONS:
        raise GeoError(f"unknown subregion {name!r}; known: {sorted(SUBREGIONS)}")
    known = {country.iso2 for country in all_countries()}
    return tuple(sorted(SUBREGIONS[name] & known))


def is_eastern_europe(country_code: str) -> bool:
    """The Figure 6 tail cohort."""
    return subregion_of(country_code) == "eastern-europe"
