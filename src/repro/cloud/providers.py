"""The seven cloud providers measured by the paper (§4.1).

The paper distinguishes providers operating *private* wide-area backbones
with wide ISP peering (Amazon, Google, Microsoft, Alibaba) from providers
that largely ride the *public* Internet (Digital Ocean, Linode, Vultr).
:mod:`repro.cloud.backbone` turns this into latency adjustments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError


class BackboneType(enum.Enum):
    """How a provider's traffic traverses the wide area."""

    PRIVATE = "private"
    PUBLIC = "public"


@dataclass(frozen=True)
class Provider:
    """A cloud provider in the study."""

    slug: str
    name: str
    backbone: BackboneType
    #: Year the provider launched its first compute region.
    founded_cloud: int

    @property
    def has_private_backbone(self) -> bool:
        return self.backbone is BackboneType.PRIVATE


_PROVIDERS: Dict[str, Provider] = {
    "aws": Provider("aws", "Amazon Web Services", BackboneType.PRIVATE, 2006),
    "gcp": Provider("gcp", "Google Cloud Platform", BackboneType.PRIVATE, 2008),
    "azure": Provider("azure", "Microsoft Azure", BackboneType.PRIVATE, 2010),
    "alibaba": Provider("alibaba", "Alibaba Cloud", BackboneType.PRIVATE, 2009),
    "digitalocean": Provider("digitalocean", "DigitalOcean", BackboneType.PUBLIC, 2011),
    "linode": Provider("linode", "Linode", BackboneType.PUBLIC, 2003),
    "vultr": Provider("vultr", "Vultr", BackboneType.PUBLIC, 2014),
}

#: Provider slugs in a stable order (hyperscalers first).
PROVIDER_SLUGS: Tuple[str, ...] = tuple(_PROVIDERS)


def get_provider(slug: str) -> Provider:
    """Look up a provider by slug."""
    try:
        return _PROVIDERS[slug.lower()]
    except KeyError:
        raise ReproError(f"unknown provider: {slug!r}") from None


def all_providers() -> Tuple[Provider, ...]:
    return tuple(_PROVIDERS.values())
