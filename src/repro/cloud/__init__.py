"""Cloud-provider catalog: providers, the 101 regions, VMs, backbones."""

from repro.cloud.backbone import PRIVATE_BACKBONE, adjustment_for, adjustment_for_slug
from repro.cloud.expansion import CandidateRegion, ExpansionStudy, candidate_regions
from repro.cloud.providers import (
    PROVIDER_SLUGS,
    BackboneType,
    Provider,
    all_providers,
    get_provider,
)
from repro.cloud.regions import (
    CloudRegion,
    all_regions,
    datacenter_countries,
    get_region,
    iter_regions,
    regions_per_provider,
)
from repro.cloud.vm import TargetVM, deploy_fleet, vm_by_address, vm_for_region

__all__ = [
    "BackboneType",
    "CandidateRegion",
    "CloudRegion",
    "ExpansionStudy",
    "candidate_regions",
    "PRIVATE_BACKBONE",
    "PROVIDER_SLUGS",
    "Provider",
    "TargetVM",
    "adjustment_for",
    "adjustment_for_slug",
    "all_providers",
    "all_regions",
    "datacenter_countries",
    "deploy_fleet",
    "get_provider",
    "get_region",
    "iter_regions",
    "regions_per_provider",
    "vm_by_address",
    "vm_for_region",
]
