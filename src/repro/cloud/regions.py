"""The 101 cloud regions targeted by the measurement campaign.

A curated snapshot of the compute-region footprint of the seven providers
around the campaign period (September 2019 - June 2020): 101 regions in
exactly 21 countries, matching the paper's §4.1 ("101 cloud regions with
compute datacenters ... in 21 countries").  Coordinates are the metro areas
the regions are commonly attributed to; region codes are the providers'
own.

This catalog is *real data*, not simulation — the geography of the cloud is
the causal variable in the study, so we keep it faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ReproError
from repro.geo.coordinates import LatLon
from repro.geo.countries import Country, get_country
from repro.cloud.providers import Provider, get_provider


@dataclass(frozen=True)
class CloudRegion:
    """One provider region with compute datacenters."""

    provider_slug: str
    code: str
    city: str
    country_code: str
    location: LatLon

    @property
    def key(self) -> str:
        """Globally unique identifier, e.g. ``aws:eu-central-1``."""
        return f"{self.provider_slug}:{self.code}"

    @property
    def provider(self) -> Provider:
        return get_provider(self.provider_slug)

    @property
    def country(self) -> Country:
        return get_country(self.country_code)

    @property
    def continent(self) -> str:
        return self.country.continent


# provider, code, city, country, lat, lon
_RAW: Tuple[Tuple[str, str, str, str, float, float], ...] = (
    # --- Amazon Web Services (17) ---
    ("aws", "us-east-1", "Ashburn", "US", 39.04, -77.49),
    ("aws", "us-east-2", "Columbus", "US", 39.96, -83.00),
    ("aws", "us-west-1", "San Jose", "US", 37.34, -121.89),
    ("aws", "us-west-2", "Boardman", "US", 45.84, -119.70),
    ("aws", "ca-central-1", "Montreal", "CA", 45.50, -73.57),
    ("aws", "sa-east-1", "Sao Paulo", "BR", -23.55, -46.63),
    ("aws", "eu-west-1", "Dublin", "IE", 53.35, -6.26),
    ("aws", "eu-west-2", "London", "GB", 51.51, -0.13),
    ("aws", "eu-west-3", "Paris", "FR", 48.86, 2.35),
    ("aws", "eu-central-1", "Frankfurt", "DE", 50.11, 8.68),
    ("aws", "eu-north-1", "Stockholm", "SE", 59.33, 18.06),
    ("aws", "ap-south-1", "Mumbai", "IN", 19.08, 72.88),
    ("aws", "ap-northeast-1", "Tokyo", "JP", 35.68, 139.69),
    ("aws", "ap-northeast-2", "Seoul", "KR", 37.57, 126.98),
    ("aws", "ap-southeast-1", "Singapore", "SG", 1.35, 103.82),
    ("aws", "ap-southeast-2", "Sydney", "AU", -33.87, 151.21),
    ("aws", "ap-east-1", "Hong Kong", "HK", 22.32, 114.17),
    # --- Google Cloud Platform (16) ---
    ("gcp", "us-central1", "Council Bluffs", "US", 41.26, -95.86),
    ("gcp", "us-east1", "Moncks Corner", "US", 33.20, -80.01),
    ("gcp", "us-east4", "Ashburn", "US", 39.04, -77.49),
    ("gcp", "us-west1", "The Dalles", "US", 45.59, -121.18),
    ("gcp", "northamerica-northeast1", "Montreal", "CA", 45.50, -73.57),
    ("gcp", "southamerica-east1", "Sao Paulo", "BR", -23.55, -46.63),
    ("gcp", "europe-west2", "London", "GB", 51.51, -0.13),
    ("gcp", "europe-west3", "Frankfurt", "DE", 50.11, 8.68),
    ("gcp", "europe-west4", "Eemshaven", "NL", 53.43, 6.83),
    ("gcp", "europe-west6", "Zurich", "CH", 47.38, 8.54),
    ("gcp", "europe-north1", "Hamina", "FI", 60.57, 27.20),
    ("gcp", "asia-south1", "Mumbai", "IN", 19.08, 72.88),
    ("gcp", "asia-southeast1", "Jurong West", "SG", 1.35, 103.70),
    ("gcp", "asia-east2", "Hong Kong", "HK", 22.32, 114.17),
    ("gcp", "asia-northeast1", "Tokyo", "JP", 35.68, 139.69),
    ("gcp", "australia-southeast1", "Sydney", "AU", -33.87, 151.21),
    # --- Microsoft Azure (22) ---
    ("azure", "eastus", "Richmond", "US", 37.54, -77.44),
    ("azure", "centralus", "Des Moines", "US", 41.59, -93.62),
    ("azure", "southcentralus", "San Antonio", "US", 29.42, -98.49),
    ("azure", "westus", "San Francisco Bay", "US", 37.77, -122.42),
    ("azure", "westus2", "Quincy", "US", 47.23, -119.85),
    ("azure", "canadacentral", "Toronto", "CA", 43.65, -79.38),
    ("azure", "brazilsouth", "Sao Paulo", "BR", -23.55, -46.63),
    ("azure", "northeurope", "Dublin", "IE", 53.35, -6.26),
    ("azure", "westeurope", "Amsterdam", "NL", 52.37, 4.90),
    ("azure", "uksouth", "London", "GB", 51.51, -0.13),
    ("azure", "francecentral", "Paris", "FR", 48.86, 2.35),
    ("azure", "germanywestcentral", "Frankfurt", "DE", 50.11, 8.68),
    ("azure", "switzerlandnorth", "Zurich", "CH", 47.38, 8.54),
    ("azure", "norwayeast", "Oslo", "NO", 59.91, 10.75),
    ("azure", "uaenorth", "Dubai", "AE", 25.20, 55.27),
    ("azure", "southafricanorth", "Johannesburg", "ZA", -26.20, 28.05),
    ("azure", "centralindia", "Pune", "IN", 18.52, 73.86),
    ("azure", "eastasia", "Hong Kong", "HK", 22.32, 114.17),
    ("azure", "southeastasia", "Singapore", "SG", 1.35, 103.82),
    ("azure", "japaneast", "Tokyo", "JP", 35.68, 139.69),
    ("azure", "koreacentral", "Seoul", "KR", 37.57, 126.98),
    ("azure", "australiaeast", "Sydney", "AU", -33.87, 151.21),
    # --- DigitalOcean (9) ---
    ("digitalocean", "nyc1", "New York", "US", 40.71, -74.01),
    ("digitalocean", "nyc3", "New York", "US", 40.71, -74.01),
    ("digitalocean", "sfo2", "San Francisco", "US", 37.77, -122.42),
    ("digitalocean", "tor1", "Toronto", "CA", 43.65, -79.38),
    ("digitalocean", "lon1", "London", "GB", 51.51, -0.13),
    ("digitalocean", "ams3", "Amsterdam", "NL", 52.37, 4.90),
    ("digitalocean", "fra1", "Frankfurt", "DE", 50.11, 8.68),
    ("digitalocean", "sgp1", "Singapore", "SG", 1.35, 103.82),
    ("digitalocean", "blr1", "Bangalore", "IN", 12.97, 77.59),
    # --- Linode (11) ---
    ("linode", "us-east", "Newark", "US", 40.74, -74.17),
    ("linode", "us-west", "Fremont", "US", 37.55, -121.99),
    ("linode", "us-central", "Dallas", "US", 32.78, -96.80),
    ("linode", "us-southeast", "Atlanta", "US", 33.75, -84.39),
    ("linode", "ca-central", "Toronto", "CA", 43.65, -79.38),
    ("linode", "eu-west", "London", "GB", 51.51, -0.13),
    ("linode", "eu-central", "Frankfurt", "DE", 50.11, 8.68),
    ("linode", "ap-west", "Mumbai", "IN", 19.08, 72.88),
    ("linode", "ap-south", "Singapore", "SG", 1.35, 103.82),
    ("linode", "ap-northeast", "Tokyo", "JP", 35.68, 139.69),
    ("linode", "ap-southeast", "Sydney", "AU", -33.87, 151.21),
    # --- Vultr (12) ---
    ("vultr", "ewr", "New Jersey", "US", 40.73, -74.17),
    ("vultr", "sjc", "Silicon Valley", "US", 37.34, -121.89),
    ("vultr", "lax", "Los Angeles", "US", 34.05, -118.24),
    ("vultr", "mia", "Miami", "US", 25.76, -80.19),
    ("vultr", "yto", "Toronto", "CA", 43.65, -79.38),
    ("vultr", "lhr", "London", "GB", 51.51, -0.13),
    ("vultr", "cdg", "Paris", "FR", 48.86, 2.35),
    ("vultr", "fra", "Frankfurt", "DE", 50.11, 8.68),
    ("vultr", "ams", "Amsterdam", "NL", 52.37, 4.90),
    ("vultr", "nrt", "Tokyo", "JP", 35.68, 139.69),
    ("vultr", "sgp", "Singapore", "SG", 1.35, 103.82),
    ("vultr", "syd", "Sydney", "AU", -33.87, 151.21),
    # --- Alibaba Cloud (14) ---
    ("alibaba", "cn-beijing", "Beijing", "CN", 39.90, 116.41),
    ("alibaba", "cn-shanghai", "Shanghai", "CN", 31.23, 121.47),
    ("alibaba", "cn-shenzhen", "Shenzhen", "CN", 22.54, 114.06),
    ("alibaba", "cn-hangzhou", "Hangzhou", "CN", 30.27, 120.16),
    ("alibaba", "cn-hongkong", "Hong Kong", "HK", 22.32, 114.17),
    ("alibaba", "ap-southeast-1", "Singapore", "SG", 1.35, 103.82),
    ("alibaba", "ap-south-1", "Mumbai", "IN", 19.08, 72.88),
    ("alibaba", "ap-northeast-1", "Tokyo", "JP", 35.68, 139.69),
    ("alibaba", "ap-southeast-2", "Sydney", "AU", -33.87, 151.21),
    ("alibaba", "eu-central-1", "Frankfurt", "DE", 50.11, 8.68),
    ("alibaba", "eu-west-1", "London", "GB", 51.51, -0.13),
    ("alibaba", "me-east-1", "Dubai", "AE", 25.20, 55.27),
    ("alibaba", "us-west-1", "Silicon Valley", "US", 37.34, -121.89),
    ("alibaba", "us-east-1", "Ashburn", "US", 39.04, -77.49),
)

_BY_KEY: Dict[str, CloudRegion] = {}
for _provider, _code, _city, _cc, _lat, _lon in _RAW:
    get_provider(_provider)  # validate eagerly
    get_country(_cc)
    _region = CloudRegion(
        provider_slug=_provider,
        code=_code,
        city=_city,
        country_code=_cc,
        location=LatLon(_lat, _lon),
    )
    if _region.key in _BY_KEY:
        raise ReproError(f"duplicate region key {_region.key}")
    _BY_KEY[_region.key] = _region
del _provider, _code, _city, _cc, _lat, _lon, _region


def get_region(key: str) -> CloudRegion:
    """Look up a region by its ``provider:code`` key."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise ReproError(f"unknown cloud region: {key!r}") from None


def all_regions() -> Tuple[CloudRegion, ...]:
    """All 101 regions, in catalog order."""
    return tuple(_BY_KEY.values())


def iter_regions(
    provider: str = None, continent: str = None, country: str = None
) -> Iterator[CloudRegion]:
    """Iterate regions with optional filters."""
    for region in _BY_KEY.values():
        if provider is not None and region.provider_slug != provider.lower():
            continue
        if continent is not None and region.continent != continent.upper():
            continue
        if country is not None and region.country_code != country.upper():
            continue
        yield region


def datacenter_countries() -> Tuple[str, ...]:
    """Sorted ISO codes of the countries hosting at least one region."""
    return tuple(sorted({region.country_code for region in _BY_KEY.values()}))


def regions_per_provider() -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for region in _BY_KEY.values():
        counts[region.provider_slug] = counts.get(region.provider_slug, 0) + 1
    return counts
