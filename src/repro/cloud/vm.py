"""Measurement-target VMs.

The authors "established a VM in every selected location" (§4.1).  A
:class:`TargetVM` is the ping destination the Atlas platform resolves a
measurement against: a stable synthetic address, the region it lives in,
and the backbone adjustment its provider earns.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.cloud.backbone import adjustment_for
from repro.cloud.regions import CloudRegion, all_regions, get_region
from repro.errors import ReproError
from repro.net.pathmodel import EndpointAdjustment


@dataclass(frozen=True)
class TargetVM:
    """A ping-target VM deployed in one cloud region."""

    region: CloudRegion
    address: str

    @property
    def key(self) -> str:
        return self.region.key

    @property
    def adjustment(self) -> EndpointAdjustment:
        return adjustment_for(self.region.provider)


def _synthetic_address(region: CloudRegion, index: int) -> str:
    """A stable, documentation-range IPv4 address for a region's VM.

    Uses TEST-NET-3 (203.0.113.0/24) style addressing extended into a
    synthetic 10.x space keyed by catalog position, so addresses are unique
    and reproducible but obviously not routable.
    """
    high, low = divmod(index, 250)
    return f"10.{200 + high}.{low + 1}.10"


@lru_cache(maxsize=1)
def deploy_fleet() -> Tuple[TargetVM, ...]:
    """One VM per region — the study's 101 endpoints."""
    return tuple(
        TargetVM(region=region, address=_synthetic_address(region, index))
        for index, region in enumerate(all_regions())
    )


@lru_cache(maxsize=1)
def _fleet_by_address() -> Dict[str, TargetVM]:
    return {vm.address: vm for vm in deploy_fleet()}


def vm_for_region(key: str) -> TargetVM:
    """The VM deployed in region ``provider:code``."""
    region = get_region(key)
    for vm in deploy_fleet():
        if vm.region.key == region.key:
            return vm
    raise ReproError(f"no VM deployed in region {key!r}")  # pragma: no cover


def vm_by_address(address: str) -> TargetVM:
    """Resolve a VM by its synthetic address (as the Atlas platform does)."""
    try:
        return _fleet_by_address()[address]
    except KeyError:
        raise ReproError(f"no VM with address {address!r}") from None
