"""Cloud-expansion analysis (paper §5).

"Further, many applications in the edge FZ can be supported by a wider
deployment of cloud/network infrastructure, especially in Asia, Latin
America, and Africa."  This module quantifies that alternative to edge:
candidate new cloud regions in under-served countries, a greedy placement
that maximizes population-weighted latency improvement, and before/after
reachability reports comparable to the edge-deployment gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cloud.regions import datacenter_countries
from repro.constants import PL_MS
from repro.errors import ReproError
from repro.geo.coordinates import LatLon
from repro.geo.countries import countries_with_probes, get_country
from repro.net.pathmodel import LatencyModel


@dataclass(frozen=True)
class CandidateRegion:
    """A potential new cloud region."""

    country_code: str
    location: LatLon

    @property
    def label(self) -> str:
        return f"new:{self.country_code}"


def candidate_regions(limit: int = 30) -> Tuple[CandidateRegion, ...]:
    """Candidate countries for new regions: the most populous countries
    currently without a datacenter, at their population centers."""
    from repro.atlas.population import PROBE_CENTER_OVERRIDES

    existing = set(datacenter_countries())
    candidates = [
        country
        for country in countries_with_probes()
        if country.iso2 not in existing
    ]
    candidates.sort(key=lambda country: country.population_m, reverse=True)
    out = []
    for country in candidates[:limit]:
        override = PROBE_CENTER_OVERRIDES.get(country.iso2)
        location = (
            LatLon(override[0], override[1]) if override else country.centroid
        )
        out.append(CandidateRegion(country_code=country.iso2, location=location))
    return tuple(out)


class ExpansionStudy:
    """Greedy cloud expansion against a measured campaign."""

    def __init__(
        self,
        dataset,
        candidates: Sequence[CandidateRegion] = None,
        model: LatencyModel = None,
    ):
        # Imported here: repro.core depends on repro.cloud at load time,
        # so this module must not import repro.core at its own load time.
        from repro.core.proximity import per_probe_min

        self.dataset = dataset
        self.model = model if model is not None else LatencyModel(seed=0)
        self.candidates = (
            tuple(candidates) if candidates is not None else candidate_regions()
        )
        if not self.candidates:
            raise ReproError("no expansion candidates")
        self.baseline: Dict[int, float] = per_probe_min(dataset)
        # Precompute each probe's floor to every candidate once.
        self._floor: Dict[Tuple[int, str], float] = {}
        for probe_id in self.baseline:
            probe = dataset.probe(probe_id)
            for candidate in self.candidates:
                self._floor[(probe_id, candidate.label)] = self.model.floor_rtt_ms(
                    probe.location,
                    probe.country,
                    probe.access,
                    candidate.location,
                    get_country(candidate.country_code),
                )

    # -- metrics --------------------------------------------------------------

    def minima_with(self, chosen: Sequence[CandidateRegion]) -> Dict[int, float]:
        """Per-probe minimum RTT with the chosen regions added."""
        out = {}
        for probe_id, base in self.baseline.items():
            best = base
            for candidate in chosen:
                floor = self._floor[(probe_id, candidate.label)]
                if floor < best:
                    best = floor
            out[probe_id] = best
        return out

    def population_weighted_latency(self, minima: Dict[int, float]) -> float:
        """Population-weighted mean of per-country best-probe minima."""
        best_by_country: Dict[str, float] = {}
        for probe_id, value in minima.items():
            country = self.dataset.probe(probe_id).country_code
            if country not in best_by_country or value < best_by_country[country]:
                best_by_country[country] = value
        total_pop = 0.0
        weighted = 0.0
        for country, value in best_by_country.items():
            pop = get_country(country).population_m
            total_pop += pop
            weighted += pop * value
        return weighted / total_pop

    def countries_beyond_pl(self, minima: Dict[int, float]) -> int:
        best_by_country: Dict[str, float] = {}
        for probe_id, value in minima.items():
            country = self.dataset.probe(probe_id).country_code
            if country not in best_by_country or value < best_by_country[country]:
                best_by_country[country] = value
        return sum(1 for value in best_by_country.values() if value > PL_MS)

    # -- greedy placement -------------------------------------------------------

    def greedy(self, k: int) -> List[CandidateRegion]:
        """Pick ``k`` regions greedily by population-weighted improvement."""
        if k <= 0:
            raise ReproError(f"k must be positive: {k}")
        chosen: List[CandidateRegion] = []
        remaining = list(self.candidates)
        for _ in range(min(k, len(remaining))):
            scores = []
            for candidate in remaining:
                minima = self.minima_with(chosen + [candidate])
                scores.append(
                    (self.population_weighted_latency(minima), candidate)
                )
            scores.sort(key=lambda item: item[0])
            best_score, best_candidate = scores[0]
            chosen.append(best_candidate)
            remaining.remove(best_candidate)
        return chosen

    def report(self, chosen: Sequence[CandidateRegion]) -> Dict[str, float]:
        """Before/after summary of an expansion."""
        before = self.baseline
        after = self.minima_with(chosen)
        gains = np.asarray(
            [before[pid] - after[pid] for pid in before], dtype=np.float64
        )
        return {
            "regions_added": len(chosen),
            "pw_latency_before": self.population_weighted_latency(before),
            "pw_latency_after": self.population_weighted_latency(after),
            "countries_beyond_pl_before": self.countries_beyond_pl(before),
            "countries_beyond_pl_after": self.countries_beyond_pl(after),
            "median_probe_gain_ms": float(np.median(gains)),
            "share_probes_improved": float(np.mean(gains > 0.5)),
        }
