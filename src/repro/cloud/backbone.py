"""Provider backbone quality as latency adjustments.

Hyperscalers (Amazon, Google, Microsoft, Alibaba) haul traffic over
private backbones entered at the ISP edge through wide peering: paths are
a little tighter and peering penalties much smaller.  Providers riding the
public Internet (Digital Ocean, Linode, Vultr) see the unadjusted transit
model.  The effect is deliberately modest — the paper's §4 results hold
across all seven providers — but it is real and ablated in
``benchmarks/bench_ablation_backbone.py``.
"""

from __future__ import annotations

from typing import Dict

from repro.cloud.providers import Provider, get_provider
from repro.net.pathmodel import PUBLIC_INTERNET, EndpointAdjustment

#: Adjustment applied when the target sits behind a private backbone.
PRIVATE_BACKBONE = EndpointAdjustment(path_factor=0.95, peering_factor=0.55)

_BY_BACKBONE: Dict[bool, EndpointAdjustment] = {
    True: PRIVATE_BACKBONE,
    False: PUBLIC_INTERNET,
}


def adjustment_for(provider: Provider) -> EndpointAdjustment:
    """Latency adjustment for a provider's regions."""
    return _BY_BACKBONE[provider.has_private_backbone]


def adjustment_for_slug(slug: str) -> EndpointAdjustment:
    return adjustment_for(get_provider(slug))
