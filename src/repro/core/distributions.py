"""Full latency distributions (paper §4.3, Figure 6).

Where Figures 4/5 take minima, Figure 6 plots the CDF of *every* ping
sample grouped by the probe's continent, exposing the reality of diurnal
congestion, wireless probes and under-provisioned regions: North America,
Europe and Oceania keep >75 % of samples below the PL threshold while
Latin America, Asia and Africa do not.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.constants import MTP_MS, PL_MS
from repro.core.dataset import CampaignDataset
from repro.core.filtering import unprivileged_mask
from repro.core.nearest import nearest_target_mask
from repro.errors import CampaignError
from repro.frame import ECDF, Frame, ecdf


def samples_by_continent(
    dataset: CampaignDataset, nearest_only: bool = True
) -> Dict[str, np.ndarray]:
    """Valid sample RTTs per probe continent.

    ``nearest_only`` keeps only pings towards each probe's closest
    datacenter — Figure 6's definition ("all ping measurements from all
    probes *to their closest datacenter*").  Pass ``False`` for the raw
    all-targets distribution.
    """
    mask = unprivileged_mask(dataset)
    if nearest_only:
        mask = nearest_target_mask(dataset, mask)
    continents = dataset.probe_continents()[mask]
    rtts = dataset.column("rtt_min")[mask]
    if len(rtts) == 0:
        raise CampaignError("no valid samples")
    return {
        str(continent): rtts[continents == continent]
        for continent in np.unique(continents)
    }


def all_samples_cdf_by_continent(dataset: CampaignDataset) -> Dict[str, ECDF]:
    """Figure 6: CDF of all measurements, grouped by continent."""
    return {
        continent: ecdf(values)
        for continent, values in samples_by_continent(dataset).items()
    }


def threshold_table(dataset: CampaignDataset) -> Frame:
    """Per-continent shares of samples under MTP and PL, plus quartiles.

    The rows back the §4.3 claims: ">75 % of NA/EU/OC probes below PL",
    "the top 25 % probes in NA and EU can even support MTP".
    """
    records = []
    for continent, values in sorted(samples_by_continent(dataset).items()):
        records.append(
            {
                "continent": continent,
                "samples": int(len(values)),
                "under_mtp": float(np.mean(values <= MTP_MS)),
                "under_pl": float(np.mean(values <= PL_MS)),
                "p25": float(np.percentile(values, 25)),
                "median": float(np.median(values)),
                "p75": float(np.percentile(values, 75)),
                "p95": float(np.percentile(values, 95)),
            }
        )
    return Frame.from_records(
        records,
        columns=[
            "continent", "samples", "under_mtp", "under_pl",
            "p25", "median", "p75", "p95",
        ],
    )


def eu_tail_analysis(dataset: CampaignDataset) -> Dict[str, float]:
    """The paper's note on Figure 6: the EU tail comes from eastern
    Europe / countries without nearby datacenters, and NA lacks it.

    Returns p95 RTTs for EU overall, the EU tail contributors, and NA.
    """
    mask = nearest_target_mask(dataset, unprivileged_mask(dataset))
    continents = dataset.probe_continents()[mask]
    countries = dataset.probe_countries()[mask]
    rtts = dataset.column("rtt_min")[mask]

    eu = rtts[continents == "EU"]
    na = rtts[continents == "NA"]
    if len(eu) == 0 or len(na) == 0:
        raise CampaignError("need EU and NA samples for the tail analysis")

    # Eastern-EU tail contributors (per the paper's description); the
    # cohort definition lives in repro.geo.regions.
    from repro.geo.regions import countries_in_subregion

    eastern = set(countries_in_subregion("eastern-europe"))
    eu_mask = continents == "EU"
    tail_mask = eu_mask & np.isin(countries, list(eastern))
    tail = rtts[tail_mask]
    return {
        "eu_p95": float(np.percentile(eu, 95)),
        "na_p95": float(np.percentile(na, 95)),
        "eu_eastern_median": float(np.median(tail)) if len(tail) else float("nan"),
        "eu_western_median": float(np.median(rtts[eu_mask & ~np.isin(countries, list(eastern))])),
    }


def provider_comparison(dataset: CampaignDataset) -> Frame:
    """Median RTT per provider (private vs public backbone).

    Not a paper figure, but backs the §4.1 note that providers differ in
    network infrastructure; ablated in the benchmark suite.
    """
    mask = unprivileged_mask(dataset)
    providers = dataset.target_providers()[mask]
    rtts = dataset.column("rtt_min")[mask]
    records = []
    for provider in sorted(np.unique(providers)):
        values = rtts[providers == provider]
        records.append(
            {
                "provider": str(provider),
                "samples": int(len(values)),
                "median": float(np.median(values)),
                "p90": float(np.percentile(values, 90)),
            }
        )
    return Frame.from_records(records, columns=["provider", "samples", "median", "p90"])
