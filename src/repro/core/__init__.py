"""The paper's analysis pipeline: campaign, dataset, figures, report."""

from repro.core.campaign import Campaign, CampaignPlan, CampaignScale
from repro.core.dataset import CampaignDataset
from repro.core.distributions import (
    all_samples_cdf_by_continent,
    eu_tail_analysis,
    provider_comparison,
    samples_by_continent,
    threshold_table,
)
from repro.core.feasibility import (
    ContinentLatency,
    app_verdict_for_continent,
    cloud_sufficient_share,
    edge_beneficiaries,
    feasibility_matrix,
    measured_latency,
)
from repro.core.filtering import cohort_masks, cohort_sizes, unprivileged_mask
from repro.core.nearest import nearest_target_by_probe, nearest_target_mask
from repro.core.lastmile import (
    added_wireless_latency_ms,
    cohort_timeseries,
    wireless_penalty,
)
from repro.core.proximity import (
    BUCKET_LABELS,
    bucket_counts,
    bucket_label,
    countries_beyond_pl,
    country_min_latency,
    min_rtt_cdf_by_continent,
    per_probe_min,
    population_within,
)
from repro.core.diurnal import (
    continent_matrix,
    hourly_profile,
    peak_hour,
    peak_to_trough,
)
from repro.core.pathdecomp import (
    PathSplit,
    access_share_by_cohort,
    decompose,
    decompose_all,
    run_traceroute_survey,
)
from repro.core.completeness import (
    collection_health,
    completeness_frame,
    fleet_summary,
    health_report,
)
from repro.core.corevsaccess import CorePair, decompose_pair, survey as core_access_survey
from repro.core.ipv6 import dual_stack_comparison, v6_penalty_by_continent
from repro.core.locality import (
    cloud_locality_summary,
    domestic_share_by_continent,
    locality_with_national_edge,
    nearest_region_locality,
)
from repro.core.providers import (
    footprint_summary,
    provider_continent_medians,
    provider_matrix,
    provider_rankings,
)
from repro.core.paper_report import generate_report, write_report
from repro.core.report import HeadlineReport, headline_report
from repro.core.validation import (
    PAPER_CHECKS,
    Check,
    CheckResult,
    all_pass,
    summary_text,
    validate,
)
from repro.core.whatif import (
    SCENARIOS,
    VerdictChange,
    rescued_market_busd,
    scenario_report,
    scenario_verdicts,
    verdict_changes,
    zone_for_scenario,
)
from repro.core.trends import (
    FIGURE1_KEYWORDS,
    EraBoundaries,
    collect_figure1,
    detect_eras,
    growth_summary,
)

__all__ = [
    "BUCKET_LABELS",
    "Campaign",
    "CampaignDataset",
    "CampaignPlan",
    "CampaignScale",
    "ContinentLatency",
    "EraBoundaries",
    "FIGURE1_KEYWORDS",
    "Check",
    "CheckResult",
    "HeadlineReport",
    "PAPER_CHECKS",
    "PathSplit",
    "CorePair",
    "all_pass",
    "cloud_locality_summary",
    "collection_health",
    "completeness_frame",
    "core_access_survey",
    "domestic_share_by_continent",
    "locality_with_national_edge",
    "nearest_region_locality",
    "decompose_pair",
    "dual_stack_comparison",
    "fleet_summary",
    "footprint_summary",
    "provider_continent_medians",
    "provider_matrix",
    "provider_rankings",
    "generate_report",
    "summary_text",
    "v6_penalty_by_continent",
    "validate",
    "write_report",
    "SCENARIOS",
    "VerdictChange",
    "access_share_by_cohort",
    "added_wireless_latency_ms",
    "decompose",
    "decompose_all",
    "rescued_market_busd",
    "run_traceroute_survey",
    "scenario_report",
    "scenario_verdicts",
    "verdict_changes",
    "zone_for_scenario",
    "all_samples_cdf_by_continent",
    "app_verdict_for_continent",
    "bucket_counts",
    "bucket_label",
    "cloud_sufficient_share",
    "cohort_masks",
    "cohort_sizes",
    "cohort_timeseries",
    "collect_figure1",
    "continent_matrix",
    "countries_beyond_pl",
    "hourly_profile",
    "peak_hour",
    "peak_to_trough",
    "country_min_latency",
    "detect_eras",
    "edge_beneficiaries",
    "eu_tail_analysis",
    "feasibility_matrix",
    "growth_summary",
    "headline_report",
    "health_report",
    "measured_latency",
    "min_rtt_cdf_by_continent",
    "nearest_target_by_probe",
    "nearest_target_mask",
    "per_probe_min",
    "population_within",
    "provider_comparison",
    "samples_by_continent",
    "threshold_table",
    "unprivileged_mask",
    "wireless_penalty",
]
