"""Dual-stack (IPv4 vs IPv6) reachability comparison.

An extension study the platform supports natively: run the same ping
measurement over both address families from the same dual-stack probes
and compare.  Circa 2019, IPv6 paths ran slightly longer than IPv4
(sparser peering), a small but persistent penalty this analysis
quantifies per continent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.atlas.api.client import AtlasCreateRequest, AtlasResultsRequest
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.platform import AtlasPlatform
from repro.atlas.results.base import Result
from repro.errors import CampaignError
from repro.frame import Frame

_INTERVAL_S = 21_600
_DURATION_S = 3 * 86_400


def _run_af(
    platform: AtlasPlatform,
    target: str,
    probe_ids: Sequence[int],
    start_time: int,
    af: int,
) -> Dict[int, float]:
    """Median RTT per probe for one address family."""
    source = AtlasSource(
        type="probes",
        value=",".join(str(pid) for pid in probe_ids),
        requested=len(probe_ids),
    )
    ok, response = AtlasCreateRequest(
        measurements=[
            Ping(target=target, description=f"dualstack af={af}",
                 interval=_INTERVAL_S, af=af)
        ],
        sources=[source],
        start_time=start_time,
        stop_time=start_time + _DURATION_S,
        platform=platform,
    ).create()
    if not ok:
        raise CampaignError(f"af={af} measurement failed: {response}")
    ok, results = AtlasResultsRequest(
        msm_id=response["measurements"][0], platform=platform
    ).create()
    if not ok:
        raise CampaignError(f"af={af} result fetch failed")
    per_probe: Dict[int, List[float]] = {}
    for raw in results:
        parsed = Result.get(raw)
        if parsed.succeeded:
            per_probe.setdefault(parsed.probe_id, []).append(parsed.rtt_min)
    # Minima, not medians: the family penalty is a floor-level effect and
    # the minimum strips the (family-independent) congestion noise.
    return {pid: float(np.min(values)) for pid, values in per_probe.items()}


def dual_stack_comparison(
    platform: AtlasPlatform,
    target_key: str,
    start_time: int,
    probes_per_country: int = 2,
    countries: Sequence[str] = None,
) -> Frame:
    """v4 vs v6 medians from dual-stack probes towards one region.

    Returns one row per probe: country, continent, v4/v6 medians and the
    v6 penalty in milliseconds.
    """
    vm = next(vm for vm in platform.fleet if vm.key == target_key)
    target = platform.hostname_for(vm)
    chosen: List[int] = []
    per_country: Dict[str, int] = {}
    for probe in platform.probes:
        if not probe.has_ipv6:
            continue
        if countries is not None and probe.country_code not in countries:
            continue
        if per_country.get(probe.country_code, 0) >= probes_per_country:
            continue
        per_country[probe.country_code] = per_country.get(probe.country_code, 0) + 1
        chosen.append(probe.probe_id)
    if not chosen:
        raise CampaignError("no dual-stack probes match the selection")
    v4 = _run_af(platform, target, chosen, start_time, af=4)
    v6 = _run_af(platform, target, chosen, start_time, af=6)
    records = []
    for pid in sorted(set(v4) & set(v6)):
        probe = platform.probe(pid)
        records.append(
            {
                "probe_id": pid,
                "country": probe.country_code,
                "continent": probe.continent,
                "v4_ms": round(v4[pid], 3),
                "v6_ms": round(v6[pid], 3),
                "v6_penalty_ms": round(v6[pid] - v4[pid], 3),
            }
        )
    if not records:
        raise CampaignError("no probe produced both v4 and v6 results")
    return Frame.from_records(
        records,
        columns=["probe_id", "country", "continent", "v4_ms", "v6_ms", "v6_penalty_ms"],
    )


def v6_penalty_by_continent(comparison: Frame) -> Dict[str, float]:
    """Median v6 penalty (ms) per continent."""
    out: Dict[str, List[float]] = {}
    for row in comparison.iter_rows():
        out.setdefault(str(row["continent"]), []).append(float(row["v6_penalty_ms"]))
    return {
        continent: float(np.median(values)) for continent, values in out.items()
    }
