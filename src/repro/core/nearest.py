"""Nearest-datacenter sample selection.

Figures 6 and 7 are defined over pings "to the closest datacenter": for
each probe, the target region with the lowest typical RTT.  This module
identifies that region per probe (by median RTT over the given samples)
and returns the mask of samples towards it — fully vectorized, since the
inner loop would otherwise dominate analysis time on million-sample
datasets.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.errors import CampaignError


def nearest_target_by_probe(
    dataset: CampaignDataset, mask: np.ndarray
) -> Dict[int, int]:
    """Per-probe nearest target index (lowest median RTT), over ``mask``."""
    probe_ids = dataset.column("probe_id")[mask]
    targets = dataset.column("target_index")[mask]
    rtts = dataset.column("rtt_min")[mask]
    if len(probe_ids) == 0:
        raise CampaignError("no samples selected for nearest-target analysis")

    num_targets = len(dataset.targets)
    pair_key = probe_ids.astype(np.int64) * num_targets + targets
    order = np.lexsort((rtts, pair_key))
    sorted_key = pair_key[order]
    sorted_rtt = rtts[order]

    boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_key)]))
    # Lower median of each (probe, target) group.
    medians = sorted_rtt[(starts + ends - 1) // 2]
    group_probe = (sorted_key[starts] // num_targets).astype(np.int64)
    group_target = (sorted_key[starts] % num_targets).astype(np.int64)

    best: Dict[int, int] = {}
    best_median: Dict[int, float] = {}
    for probe, target, median in zip(group_probe, group_target, medians):
        probe = int(probe)
        if probe not in best or median < best_median[probe]:
            best[probe] = int(target)
            best_median[probe] = float(median)
    return best


def nearest_target_mask(dataset: CampaignDataset, mask: np.ndarray) -> np.ndarray:
    """Restrict ``mask`` to each probe's nearest-region samples."""
    best = nearest_target_by_probe(dataset, mask)
    probe_ids = dataset.column("probe_id")
    targets = dataset.column("target_index")
    # Lookup table over the probe-id range (ids are dense and small).
    max_id = int(probe_ids.max())
    table = np.full(max_id + 2, -1, dtype=np.int64)
    for probe, target in best.items():
        table[probe] = target
    return mask & (table[probe_ids] == targets)
