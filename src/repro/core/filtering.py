"""Probe filtering and cohort construction (paper §4.1, §4.3).

Two filters from the methodology:

* **privileged-location exclusion** — probes whose tags reveal a
  datacenter/cloud installation are dropped from all analyses ("We filter
  out all the probes that are clearly installed in privileged locations");
* **last-mile cohorts** — Figure 7 compares probes tagged wired
  (``ethernet``/``broadband``/...) against probes tagged wireless
  (``lte``/``wifi``/``wlan``/...), additionally requiring each cohort
  member's baseline latency to be in line with its country's average
  (dropping mis-tagged probes).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.errors import CampaignError

#: Figure 7 sanity filter: a probe whose baseline (median) latency is more
#: than this factor away from its country median is considered mis-tagged.
BASELINE_TOLERANCE = 6.0


def unprivileged_mask(dataset: CampaignDataset) -> np.ndarray:
    """Sample mask excluding privileged probes and failed pings."""
    return ~dataset.probe_privileged() & dataset.succeeded_mask()


def cohort_masks(dataset: CampaignDataset) -> Dict[str, np.ndarray]:
    """Sample masks for the wired and wireless cohorts (Figure 7).

    Applies, in order: privileged exclusion, tag-based cohort selection,
    and the per-probe baseline sanity check against the country median.
    """
    base = unprivileged_mask(dataset)
    cohorts = dataset.probe_cohorts()
    rtt = dataset.column("rtt_min")
    countries = dataset.probe_countries()
    probe_ids = dataset.column("probe_id")

    # Country medians over all valid samples (the "country average"
    # yardstick the paper verifies against).
    country_median: Dict[str, float] = {}
    for country in np.unique(countries[base]):
        values = rtt[base & (countries == country)]
        if len(values):
            country_median[str(country)] = float(np.median(values))

    masks: Dict[str, np.ndarray] = {}
    for cohort in ("wired", "wireless"):
        mask = base & (cohorts == cohort)
        keep = mask.copy()
        for probe_id in np.unique(probe_ids[mask]):
            probe_mask = mask & (probe_ids == probe_id)
            values = rtt[probe_mask]
            if not len(values):
                continue
            country = str(countries[probe_mask][0])
            reference = country_median.get(country)
            if reference is None or reference <= 0:
                continue
            baseline = float(np.median(values))
            if baseline > reference * BASELINE_TOLERANCE:
                keep &= ~probe_mask
        masks[cohort] = keep
    return masks


def cohort_sizes(dataset: CampaignDataset) -> Tuple[int, int]:
    """(wired probes, wireless probes) after all Figure 7 filtering."""
    masks = cohort_masks(dataset)
    probe_ids = dataset.column("probe_id")
    wired = len(np.unique(probe_ids[masks["wired"]]))
    wireless = len(np.unique(probe_ids[masks["wireless"]]))
    if wired == 0 or wireless == 0:
        raise CampaignError(
            "cohort construction produced an empty cohort; "
            "campaign too small for Figure 7"
        )
    return wired, wireless
