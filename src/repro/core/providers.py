"""Multi-cloud provider comparison (the CloudCmp angle).

The paper motivates its own measurements by noting that "the most recent
multi-cloud measurement is a decade old" (CloudCmp, [40]).  This module
is the multi-cloud slice of the reproduction: per-provider reachability
by continent, provider rankings, and footprint-vs-performance framing —
the table a 2020 CloudCmp would have printed.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.cloud.providers import get_provider
from repro.core.dataset import CampaignDataset
from repro.core.filtering import unprivileged_mask
from repro.errors import CampaignError
from repro.frame import Frame


def provider_continent_medians(dataset: CampaignDataset) -> Frame:
    """Long table: (provider, probe continent) -> median RTT and samples."""
    mask = unprivileged_mask(dataset)
    providers = dataset.target_providers()[mask]
    continents = dataset.probe_continents()[mask]
    rtts = dataset.column("rtt_min")[mask]
    records: List[dict] = []
    for provider in sorted(np.unique(providers)):
        provider_mask = providers == provider
        for continent in sorted(np.unique(continents[provider_mask])):
            values = rtts[provider_mask & (continents == continent)]
            records.append(
                {
                    "provider": str(provider),
                    "continent": str(continent),
                    "median_ms": round(float(np.median(values)), 2),
                    "samples": int(len(values)),
                }
            )
    if not records:
        raise CampaignError("no samples for the provider comparison")
    return Frame.from_records(
        records, columns=["provider", "continent", "median_ms", "samples"]
    )


def provider_matrix(dataset: CampaignDataset) -> Frame:
    """Wide table: one row per provider, one column per continent."""
    long_table = provider_continent_medians(dataset)
    return long_table.select(["provider", "continent", "median_ms"]).pivot(
        index="provider", columns="continent", values="median_ms"
    )


def provider_rankings(dataset: CampaignDataset) -> Frame:
    """Providers ranked by median RTT within their shared footprint.

    Only probes' samples towards continents *every* provider serves are
    compared, removing the footprint confound (small providers have no
    Africa/Latin-America presence).
    """
    mask = unprivileged_mask(dataset)
    providers = dataset.target_providers()[mask]
    target_continents = dataset.target_continents()[mask]
    rtts = dataset.column("rtt_min")[mask]

    provider_names = sorted(np.unique(providers))
    shared = None
    for provider in provider_names:
        served = set(np.unique(target_continents[providers == provider]))
        shared = served if shared is None else shared & served
    if not shared:
        raise CampaignError("providers share no continent footprint")

    in_shared = np.isin(target_continents, list(shared))
    records = []
    for provider in provider_names:
        values = rtts[in_shared & (providers == provider)]
        meta = get_provider(str(provider))
        records.append(
            {
                "provider": str(provider),
                "backbone": meta.backbone.value,
                "median_ms": round(float(np.median(values)), 2),
                "p90_ms": round(float(np.percentile(values, 90)), 2),
                "samples": int(len(values)),
            }
        )
    records.sort(key=lambda record: record["median_ms"])
    for rank, record in enumerate(records, start=1):
        record["rank"] = rank
    return Frame.from_records(
        records,
        columns=["rank", "provider", "backbone", "median_ms", "p90_ms", "samples"],
    )


def footprint_summary(dataset: CampaignDataset) -> Dict[str, Dict[str, float]]:
    """Per-provider footprint vs performance snapshot."""
    rankings = provider_rankings(dataset)
    out: Dict[str, Dict[str, float]] = {}
    for row in rankings.iter_rows():
        provider = str(row["provider"])
        regions = sum(
            1 for vm in dataset.targets if vm.region.provider_slug == provider
        )
        out[provider] = {
            "regions": regions,
            "rank": int(row["rank"]),
            "median_ms": float(row["median_ms"]),
        }
    return out
