"""Where is the delay? Traceroute-based path decomposition (paper §4.3/§5).

The paper attributes most end-user latency to the last mile and plans
"TCP-based probing techniques" as future work.  This module implements
that extension: it runs a traceroute survey through the client API,
parses the results sagan-style, and splits each path's RTT into

* **access** — up to the ISP concentrator (hop 2);
* **core** — everything beyond it, to the datacenter.

Grouping the split by last-mile cohort quantifies the "last mile is the
bottleneck" consensus the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.atlas.api.client import AtlasCreateRequest, AtlasResultsRequest
from repro.atlas.api.measurements import Traceroute
from repro.atlas.api.sources import AtlasSource
from repro.atlas.platform import AtlasPlatform
from repro.atlas.results.base import Result
from repro.atlas.results.traceroute import TracerouteResult
from repro.atlas.tags import classify_lastmile
from repro.errors import CampaignError
from repro.frame import Frame

#: Default survey shape: one day of 6-hourly TCP traceroutes.
_SURVEY_INTERVAL_S = 21_600
_SURVEY_DURATION_S = 86_400


@dataclass(frozen=True)
class PathSplit:
    """One traceroute's access/core decomposition."""

    probe_id: int
    target_key: str
    access_ms: float
    core_ms: float
    total_ms: float

    @property
    def access_share(self) -> float:
        return self.access_ms / self.total_ms if self.total_ms > 0 else 0.0


def run_traceroute_survey(
    platform: AtlasPlatform,
    target_keys: Sequence[str],
    probe_ids: Sequence[int],
    start_time: int,
    protocol: str = "TCP",
) -> List[TracerouteResult]:
    """Run a traceroute survey through the client API and parse results."""
    if not target_keys or not probe_ids:
        raise CampaignError("survey needs targets and probes")
    source = AtlasSource(
        type="probes",
        value=",".join(str(pid) for pid in probe_ids),
        requested=len(probe_ids),
    )
    parsed: List[TracerouteResult] = []
    for key in target_keys:
        vm = next(vm for vm in platform.fleet if vm.key == key)
        ok, response = AtlasCreateRequest(
            measurements=[
                Traceroute(
                    target=platform.hostname_for(vm),
                    description=f"path survey {key}",
                    interval=_SURVEY_INTERVAL_S,
                    protocol=protocol,
                    port=443,
                )
            ],
            sources=[source],
            start_time=start_time,
            stop_time=start_time + _SURVEY_DURATION_S,
            platform=platform,
        ).create()
        if not ok:
            raise CampaignError(
                f"traceroute survey failed for {key}: {response['error']['detail']}"
            )
        ok, raw_results = AtlasResultsRequest(
            msm_id=response["measurements"][0], platform=platform
        ).create()
        if not ok:
            raise CampaignError(f"result fetch failed for {key}")
        for raw in raw_results:
            result = Result.get(raw)
            if isinstance(result, TracerouteResult):
                result.target_key = key  # annotate for the split
                parsed.append(result)
    return parsed


def decompose(result: TracerouteResult) -> "PathSplit | None":
    """Split one traceroute into access and core delay.

    Returns None for paths whose hop 2 or destination did not respond
    (they cannot be decomposed, as with real traceroute data).
    """
    if result.total_hops < 2 or result.last_rtt is None:
        return None
    hop2 = next((hop for hop in result.hops if hop.index == 2), None)
    if hop2 is None or not hop2.responded:
        return None
    access = hop2.best_rtt
    total = result.last_rtt
    if total < access:
        return None
    return PathSplit(
        probe_id=result.probe_id,
        target_key=getattr(result, "target_key", result.destination_name or ""),
        access_ms=access,
        core_ms=total - access,
        total_ms=total,
    )


def decompose_all(results: Sequence[TracerouteResult]) -> List[PathSplit]:
    splits = [decompose(result) for result in results]
    return [split for split in splits if split is not None]


def access_share_by_cohort(
    platform: AtlasPlatform, splits: Sequence[PathSplit]
) -> Frame:
    """Median access share and absolute access delay per last-mile cohort."""
    if not splits:
        raise CampaignError("no decomposable paths")
    grouped: Dict[str, List[PathSplit]] = {}
    for split in splits:
        probe = platform.probe(split.probe_id)
        cohort = classify_lastmile(probe.tags)
        if cohort == "untagged":
            # Fall back to ground truth for survey purposes: the survey
            # is an internal study, not a tag-blind reproduction.
            cohort = "wireless" if probe.access.is_wireless else "wired"
        grouped.setdefault(cohort, []).append(split)
    records = []
    for cohort in sorted(grouped):
        shares = np.asarray([split.access_share for split in grouped[cohort]])
        access = np.asarray([split.access_ms for split in grouped[cohort]])
        records.append(
            {
                "cohort": cohort,
                "paths": len(shares),
                "median_access_ms": float(np.median(access)),
                "median_access_share": float(np.median(shares)),
            }
        )
    return Frame.from_records(
        records,
        columns=["cohort", "paths", "median_access_ms", "median_access_share"],
    )
