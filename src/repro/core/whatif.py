"""What-if analysis: future last-mile technologies (paper §5).

The paper is openly skeptical of the 5G marketing numbers: LTE promised
sub-10 ms in 2011 and delivers tens of milliseconds with multi-second
bufferbloat; early 5G measurements (Narayanan et al.) are "sub-optimal".
This module recomputes the feasibility zone under hypothetical wireless
floors — the promised 1 ms, the measured early deployments, and today's
LTE — and reports which applications change verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps.catalog import all_applications
from repro.apps.feasibility import FeasibilityZone, Verdict, assess
from repro.errors import ReproError

#: Named last-mile scenarios: wireless access floor in milliseconds.
SCENARIOS: Dict[str, float] = {
    # Today's LTE, per the measurement literature the paper cites.
    "lte-today": 18.0,
    # The paper's Figure 8 boundary: ~10 ms current wireless state.
    "wireless-2020": 10.0,
    # Early commercial 5G as measured by Narayanan et al. (2020):
    # better than LTE, nowhere near the marketing number.
    "5g-measured": 14.0,
    # The IMT-2020 marketing number.
    "5g-promised": 1.0,
    # Wired fibre-to-the-home for comparison.
    "fibre": 1.5,
}


@dataclass(frozen=True)
class VerdictChange:
    """An application whose FZ verdict changes under a scenario."""

    slug: str
    baseline: Verdict
    scenario: Verdict


def zone_for_scenario(name: str) -> FeasibilityZone:
    """The feasibility zone with the scenario's wireless floor."""
    try:
        floor = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return FeasibilityZone(latency_low_ms=floor)


def scenario_verdicts(name: str) -> Dict[str, Verdict]:
    """All application verdicts under a scenario's zone."""
    zone = zone_for_scenario(name)
    return {app.slug: assess(app, zone) for app in all_applications()}


def verdict_changes(scenario: str, baseline: str = "wireless-2020") -> Tuple[VerdictChange, ...]:
    """Applications whose verdict differs between two scenarios."""
    base = scenario_verdicts(baseline)
    new = scenario_verdicts(scenario)
    return tuple(
        VerdictChange(slug=slug, baseline=base[slug], scenario=new[slug])
        for slug in base
        if base[slug] is not new[slug]
    )


def rescued_market_busd(scenario: str, baseline: str = "wireless-2020") -> float:
    """Market value (B$) of apps a scenario pulls *into* the zone."""
    from repro.apps.catalog import get_application

    total = 0.0
    for change in verdict_changes(scenario, baseline):
        if change.scenario is Verdict.IN_ZONE and change.baseline is not Verdict.IN_ZONE:
            total += get_application(change.slug).market_2025_busd
    return total


def scenario_report() -> Dict[str, Dict[str, float]]:
    """Per-scenario summary: in-zone app count and rescued market value."""
    report = {}
    for name in SCENARIOS:
        verdicts = scenario_verdicts(name)
        in_zone = sum(1 for v in verdicts.values() if v is Verdict.IN_ZONE)
        report[name] = {
            "wireless_floor_ms": SCENARIOS[name],
            "apps_in_zone": in_zone,
            "rescued_market_busd": rescued_market_busd(name),
        }
    return report
