"""Validation of a campaign against the paper's published shape.

Encodes every quantitative claim as a named :class:`Check` with a band
and an ordering rule, so calibration tests, the CLI (``repro validate``)
and EXPERIMENTS.md all share one source of truth.  Bands are generous —
the substrate is a simulator — but orderings are the paper's and exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.core.report import HeadlineReport


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one paper-shape check."""

    name: str
    passed: bool
    measured: float
    expected: str
    detail: str = ""

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: measured {self.measured:.3g} (expect {self.expected})"


@dataclass(frozen=True)
class Check:
    """One claim: a measurement extractor plus acceptance logic."""

    name: str
    expected: str
    extract: Callable[[HeadlineReport], float]
    accept: Callable[[float, HeadlineReport], bool]

    def run(self, report: HeadlineReport) -> CheckResult:
        value = self.extract(report)
        return CheckResult(
            name=self.name,
            passed=bool(self.accept(value, report)),
            measured=value,
            expected=self.expected,
        )


def _band(low: float, high: float) -> Callable[[float, HeadlineReport], bool]:
    return lambda value, _report: low <= value <= high


PAPER_CHECKS: Tuple[Check, ...] = (
    Check(
        "countries under 10 ms (paper: 32)",
        "22..42",
        lambda r: r.countries_under_10ms,
        _band(22, 42),
    ),
    Check(
        "countries in 10-20 ms (paper: 21)",
        "13..30",
        lambda r: r.countries_10_to_20ms,
        _band(13, 30),
    ),
    Check(
        "countries beyond PL (paper: 16)",
        "8..26",
        lambda r: r.countries_over_pl,
        _band(8, 26),
    ),
    Check(
        "EU probes under MTP (paper: ~0.80)",
        ">= 0.65",
        lambda r: r.probe_share_under_mtp.get("EU", 0.0),
        lambda v, _r: v >= 0.65,
    ),
    Check(
        "NA probes under MTP (paper: ~0.80)",
        ">= 0.65",
        lambda r: r.probe_share_under_mtp.get("NA", 0.0),
        lambda v, _r: v >= 0.65,
    ),
    Check(
        "EU samples under PL (paper: > 0.75)",
        ">= 0.75",
        lambda r: r.sample_share_under_pl.get("EU", 0.0),
        lambda v, _r: v >= 0.75,
    ),
    Check(
        "AF samples under PL (paper: a fraction)",
        "<= 0.60",
        lambda r: r.sample_share_under_pl.get("AF", 1.0),
        lambda v, _r: v <= 0.60,
    ),
    Check(
        "under-served trail well-connected (ordering)",
        "AS,SA,AF < min(NA,EU) - 0.05",
        lambda r: max(
            r.sample_share_under_pl.get(c, 0.0) for c in ("AS", "SA", "AF")
        ),
        lambda v, r: v
        < min(r.sample_share_under_pl[c] for c in ("NA", "EU")) - 0.05,
    ),
    Check(
        "wireless penalty (paper: ~2.5x)",
        "1.8..3.5",
        lambda r: r.wireless_penalty,
        _band(1.8, 3.5),
    ),
    Check(
        "NA+EU samples under 40 ms (Facebook checkpoint)",
        ">= 0.70",
        lambda r: r.facebook_share_under_40ms,
        lambda v, _r: v >= 0.70,
    ),
    Check(
        "population within PL, best case (majority of the world)",
        ">= 0.75",
        lambda r: r.population_share_under_pl,
        lambda v, _r: v >= 0.75,
    ),
)


def validate(report: HeadlineReport) -> List[CheckResult]:
    """Run every paper-shape check against a headline report."""
    return [check.run(report) for check in PAPER_CHECKS]


def all_pass(results: List[CheckResult]) -> bool:
    return all(result.passed for result in results)


def summary_text(results: List[CheckResult]) -> str:
    lines = [result.line() for result in results]
    passed = sum(1 for result in results if result.passed)
    lines.append(f"{passed}/{len(results)} paper-shape checks passed")
    return "\n".join(lines)
