"""Diurnal latency patterns.

The bufferbloat literature the paper leans on (Jiang et al.) shows
latency tracking the local traffic day: evening peaks, nighttime floors.
The campaign's timestamps plus probe longitudes let us reconstruct that
pattern from the synthetic dataset — a sanity check that the congestion
model behaves like the networks the paper measured, and an analysis the
published dataset supports directly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.core.filtering import unprivileged_mask
from repro.errors import CampaignError
from repro.frame import Frame
from repro.net.congestion import local_hour


def _local_hours(dataset: CampaignDataset, mask: np.ndarray) -> np.ndarray:
    timestamps = dataset.column("timestamp")[mask]
    longitudes = np.asarray(
        [dataset.probe(int(pid)).location.lon
         for pid in dataset.column("probe_id")[mask]]
    )
    # Vectorized local_hour.
    utc_hours = (timestamps % 86_400) / 3_600.0
    return (utc_hours + longitudes / 15.0) % 24.0


def hourly_profile(dataset: CampaignDataset, continent: str = None) -> Frame:
    """Median RTT per local hour-of-day (optionally one continent)."""
    mask = unprivileged_mask(dataset)
    if continent is not None:
        mask = mask & (dataset.probe_continents() == continent)
    if not np.any(mask):
        raise CampaignError(f"no samples for continent {continent!r}")
    hours = _local_hours(dataset, mask)
    rtts = dataset.column("rtt_min")[mask]
    records = []
    for hour in range(24):
        bucket = rtts[(hours >= hour) & (hours < hour + 1)]
        records.append(
            {
                "hour": hour,
                "samples": int(len(bucket)),
                "median": float(np.median(bucket)) if len(bucket) else float("nan"),
                "p90": float(np.percentile(bucket, 90)) if len(bucket) else float("nan"),
            }
        )
    return Frame.from_records(records, columns=["hour", "samples", "median", "p90"])


def peak_to_trough(dataset: CampaignDataset, continent: str = None) -> float:
    """Evening-peak / nighttime-trough ratio of hourly median RTT."""
    profile = hourly_profile(dataset, continent)
    medians = np.asarray(
        [m for m in profile["median"] if not np.isnan(m)], dtype=np.float64
    )
    if len(medians) < 12:
        raise CampaignError("not enough populated hours for a diurnal profile")
    return float(np.max(medians) / np.min(medians))


def peak_hour(dataset: CampaignDataset, continent: str = None) -> int:
    """Local hour with the worst median RTT."""
    profile = hourly_profile(dataset, continent)
    best_hour = None
    best_value = None
    for row in profile.iter_rows():
        value = row["median"]
        if np.isnan(value):
            continue
        if best_value is None or value > best_value:
            best_value = value
            best_hour = int(row["hour"])
    if best_hour is None:
        raise CampaignError("no populated hours")
    return best_hour


def continent_matrix(dataset: CampaignDataset) -> Dict[str, Dict[str, float]]:
    """Median RTT by (probe continent, target continent).

    Summarizes the §4.1 measurement design: within-continent cells plus
    the AF->EU and SA->NA fallbacks are populated; the rest are NaN.
    """
    mask = unprivileged_mask(dataset)
    probe_conts = dataset.probe_continents()[mask]
    target_conts = dataset.target_continents()[mask]
    rtts = dataset.column("rtt_min")[mask]
    matrix: Dict[str, Dict[str, float]] = {}
    for source in np.unique(probe_conts):
        row: Dict[str, float] = {}
        source_mask = probe_conts == source
        for target in np.unique(target_conts):
            values = rtts[source_mask & (target_conts == target)]
            row[str(target)] = float(np.median(values)) if len(values) else float("nan")
        matrix[str(source)] = row
    return matrix
