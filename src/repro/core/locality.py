"""Data locality: whose traffic has to leave the country? (paper §6)

The paper's privacy direction argues edge computing is attractive where
"processing local data locally and not sending it to the cloud oligopoly"
matters — i.e., wherever using the cloud means crossing a border.  This
analysis measures that: for each probe, is the nearest (best) cloud
region domestic, and how does a national edge deployment change the
share of users whose data can stay home?
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.core.filtering import unprivileged_mask
from repro.core.nearest import nearest_target_by_probe
from repro.errors import CampaignError
from repro.frame import Frame
from repro.geo.countries import get_country


def nearest_region_locality(dataset: CampaignDataset) -> Frame:
    """Per-probe: nearest region, whether it is domestic, and continent."""
    best = nearest_target_by_probe(dataset, unprivileged_mask(dataset))
    if not best:
        raise CampaignError("no probes with valid samples")
    records = []
    for probe_id, target_index in sorted(best.items()):
        probe = dataset.probe(probe_id)
        region = dataset.targets[target_index].region
        records.append(
            {
                "probe_id": probe_id,
                "country": probe.country_code,
                "continent": probe.continent,
                "nearest_region": region.key,
                "region_country": region.country_code,
                "domestic": probe.country_code == region.country_code,
            }
        )
    return Frame.from_records(
        records,
        columns=[
            "probe_id", "country", "continent",
            "nearest_region", "region_country", "domestic",
        ],
    )


def domestic_share_by_continent(dataset: CampaignDataset) -> Dict[str, float]:
    """Share of probes whose nearest cloud region is in their own country."""
    frame = nearest_region_locality(dataset)
    continents = frame["continent"]
    domestic = frame["domestic"].astype(bool)
    return {
        str(continent): float(np.mean(domestic[continents == continent]))
        for continent in np.unique(continents)
    }


def cloud_locality_summary(dataset: CampaignDataset) -> Dict[str, float]:
    """Headline locality numbers for the §6 privacy discussion."""
    frame = nearest_region_locality(dataset)
    domestic = frame["domestic"].astype(bool)
    countries = frame["country"]
    # Population whose country's probes stay domestic (majority rule).
    population_home = 0.0
    population_total = 0.0
    for country in np.unique(countries):
        country_share = float(np.mean(domestic[countries == country]))
        population = get_country(str(country)).population_m
        population_total += population
        if country_share >= 0.5:
            population_home += population
    return {
        "probes": len(frame),
        "probe_share_domestic": float(np.mean(domestic)),
        "population_share_domestic": population_home / population_total,
        "countries_fully_foreign": int(
            sum(
                1
                for country in np.unique(countries)
                if not np.any(domestic[countries == country])
            )
        ),
    }


def locality_with_national_edge(dataset: CampaignDataset) -> Dict[str, float]:
    """What a one-site-per-country edge does for data locality.

    By construction a national edge keeps every covered country's traffic
    domestic — this returns the delta the §6 privacy argument rests on.
    """
    baseline = cloud_locality_summary(dataset)
    return {
        "probe_share_domestic_before": baseline["probe_share_domestic"],
        "probe_share_domestic_after": 1.0,
        "countries_gaining_locality": baseline["countries_fully_foreign"],
    }
