"""The measurement campaign (paper §4.1).

Reproduces the methodology end to end through the Atlas client API:

1. deploy the VM fleet (101 regions, :mod:`repro.cloud.vm`);
2. select vantage points per country (the 3200+ probe population);
3. create one periodic ping measurement per target region, sourced from
   probes *in the same continent*, plus the §4.1 fallbacks: African
   probes also measure European regions, Latin American probes also
   measure North American regions;
4. fetch and parse every result (sagan-style), accumulating a
   :class:`~repro.core.dataset.CampaignDataset`.

Scales: the paper ran 9 months at one ping per 3 hours.  That is
reproducible here (``CampaignScale.FULL``) but takes hours of CPU;
``MEDIUM`` generates a dataset of roughly the published size (~3.2 M
samples), ``SMALL`` preserves every figure's shape in ~20 s, and ``TINY``
is for unit tests.
"""

from __future__ import annotations

import enum
import json
import logging
import math
import os
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atlas.api.client import AtlasCreateRequest
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.transport import Transport
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probes import Probe
from repro.atlas.results.base import Result
from repro.atlas.results.ping import PingResult
from repro.constants import CAMPAIGN_START_TS, MEASUREMENT_INTERVAL_S
from repro.core.dataset import CampaignDataset
from repro.errors import (
    CampaignError,
    CollectionInterruptedError,
    ResultParseError,
    TransportError,
)
from repro.geo.continents import adjacent_target_continents
from repro.cloud.vm import TargetVM
from repro.obs import ensure_obs

_log = logging.getLogger("repro.campaign")


class CampaignScale(enum.Enum):
    """Preset campaign sizes.

    ``probe_fraction`` subsamples each country's probes *proportionally*
    (with a floor of one probe per country, so the Figure 4 map keeps
    full coverage).  Proportional — not capped — sampling preserves the
    platform's European density bias, which Figure 5's "~50 % of all
    probes are in EU/NA under 20 ms" framing depends on.
    ``interval_s`` is the ping period; ``duration_days`` the campaign
    length.
    """

    TINY = ("tiny", 0.0, 43_200, 4)
    SMALL = ("small", 0.125, 43_200, 10)
    MEDIUM = ("medium", 0.34, 21_600, 30)
    FULL = ("full", 1.0, MEASUREMENT_INTERVAL_S, 273)

    def __init__(self, label: str, probe_fraction: float, interval_s: int, days: int):
        self.label = label
        self.probe_fraction = probe_fraction
        self.interval_s = interval_s
        self.duration_days = days

    @property
    def duration_s(self) -> int:
        return self.duration_days * 86_400

    def vantage_count(self, country_probes: int) -> int:
        """How many of a country's probes this scale samples (>= 1)."""
        return max(1, int(round(country_probes * self.probe_fraction)))


@dataclass(frozen=True)
class CampaignPlan:
    """Resolved campaign parameters (before execution)."""

    scale: CampaignScale
    start_time: int
    stop_time: int
    vantage_ids_by_continent: Dict[str, Tuple[int, ...]]
    packets: int = 3

    @property
    def total_vantage_points(self) -> int:
        return sum(len(ids) for ids in self.vantage_ids_by_continent.values())


@dataclass
class CollectionCheckpoint:
    """Resumable collection state: per-measurement high-water timestamps.

    ``high_water[msm_id]`` is the timestamp (exclusive) the measurement
    has been fully collected through.  The collector only advances a
    measurement's mark after its whole window landed in the dataset, so
    a checkpoint is always consistent with the samples collected so far
    and a resume never duplicates nor drops samples.
    """

    high_water: Dict[int, int] = field(default_factory=dict)
    #: Serializes mark/save: concurrent markers must never lose a
    #: high-water advance, and a save racing a mark must never write a
    #: half-updated map.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def collected_through(self, msm_id: int, default: int) -> int:
        with self._lock:
            return self.high_water.get(msm_id, default)

    def mark(self, msm_id: int, through: int) -> None:
        with self._lock:
            current = self.high_water.get(msm_id)
            if current is None or through > current:
                self.high_water[msm_id] = int(through)

    def save(self, path, fs=None) -> None:
        """Persist atomically *and durably*: write a private temp file,
        fsync it, rename over the target, fsync the parent directory — a
        reader (or a crash, or a power cut) never sees a torn or
        rolled-back JSON.  A full disk surfaces as a one-line
        :class:`~repro.errors.StoreError` naming the partial state, not
        a raw OSError traceback."""
        from repro.store.fsim import ensure_fs

        fs = ensure_fs(fs)
        with self._lock:
            payload = {str(msm_id): ts for msm_id, ts in self.high_water.items()}
        path = Path(path)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        text = json.dumps({"high_water": payload}, indent=0)
        try:
            fs.write_bytes(tmp, text.encode("utf-8"), point="checkpoint")
            fs.fsync_path(tmp, point="checkpoint")
            fs.replace(tmp, path, point="checkpoint")
            fs.fsync_dir(path.parent, point="checkpoint")
        except OSError as exc:
            from repro.errors import StoreError

            raise StoreError(
                f"checkpoint save failed ({exc.strerror or exc}): previous "
                f"checkpoint (if any) is intact at {path}"
            ) from exc

    @classmethod
    def load(cls, path) -> "CollectionCheckpoint":
        payload = json.loads(Path(path).read_text())
        return cls(
            high_water={
                int(msm_id): int(ts)
                for msm_id, ts in payload.get("high_water", {}).items()
            }
        )


@dataclass
class CollectionStats:
    """What collection had to survive (accumulates across collect calls)."""

    measurements_collected: int = 0
    samples_appended: int = 0
    quarantined: int = 0
    duplicates_dropped: int = 0
    interruptions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "measurements_collected": self.measurements_collected,
            "samples_appended": self.samples_appended,
            "quarantined": self.quarantined,
            "duplicates_dropped": self.duplicates_dropped,
            "interruptions": self.interruptions,
        }


@dataclass
class MeasurementRecord:
    """One fetched + cleaned measurement window, as a shard-local buffer.

    The unit of work both the serial and the parallel collector produce:
    parallel column lists for one measurement (one target), plus the
    cleaning counts, tagged with the measurement's canonical fleet index
    so shard results merge back in deterministic order.  Plain lists of
    primitives keep the record cheap to pickle across process workers.
    """

    index: int
    msm_id: int
    target_key: str
    probe_ids: Sequence[int]
    timestamps: Sequence[int]
    rtt_min: Sequence[float]
    rtt_avg: Sequence[float]
    sent: Sequence[int]
    rcvd: Sequence[int]
    quarantined: int
    duplicates_dropped: int

    @property
    def sample_count(self) -> int:
        return len(self.probe_ids)


#: Valid ``fast_path`` modes: ``"auto"`` uses the vectorized columnar
#: fetch whenever the transport can serve it and falls back to the scalar
#: parse otherwise (chaos transports, non-ping measurements); ``"on"``
#: demands it (raising when unavailable, for benchmarks that must not
#: silently measure the wrong path); ``"off"`` always takes the scalar
#: path.
FAST_PATH_MODES = ("auto", "on", "off")


def resolve_workers(workers) -> int:
    """Resolve a worker-count spec to a concrete positive integer.

    ``None`` and ``1`` mean serial; ``"auto"`` sizes to the machine
    (capped — collection shards coarsely, so more than 8 workers mostly
    buys merge overhead); any other value must be a positive integer.
    """
    if workers is None:
        return 1
    if workers == "auto":
        return max(1, min(8, os.cpu_count() or 1))
    count = int(workers)
    if count < 1:
        raise CampaignError(f"workers must be positive: {workers!r}")
    return count


def plan_shards(count: int, workers: int) -> List[List[int]]:
    """Partition ``range(count)`` into at most ``workers`` contiguous shards.

    Every index is assigned to exactly one shard, shard sizes differ by
    at most one, no shard is empty, and ``workers == 1`` degenerates to a
    single shard holding the whole range (the serial path).  Contiguity
    keeps each worker walking measurements in canonical order, so a
    shard's output is already ordered for the merge.
    """
    if count < 0:
        raise CampaignError(f"cannot shard a negative count: {count}")
    if workers < 1:
        raise CampaignError(f"workers must be positive: {workers}")
    shard_count = min(workers, count)
    if shard_count == 0:
        return []
    base, extra = divmod(count, shard_count)
    shards: List[List[int]] = []
    cursor = 0
    for shard_index in range(shard_count):
        size = base + (1 if shard_index < extra else 0)
        shards.append(list(range(cursor, cursor + size)))
        cursor += size
    return shards


@dataclass(frozen=True)
class RowShard:
    """One worker's slice of a store-aware shard plan.

    ``entries`` is a half-open index range into the pending-measurement
    list; ``row_start``/``rows`` locate the slice's samples in the global
    canonical row stream.  The store-shard geometry of the slice follows
    arithmetically — the rows before the first global ``rows_per_shard``
    boundary are the *head partial*, whole multiples after it are
    *interior shards* the worker writes under their final global names,
    and the remainder is the *tail partial* — which is exactly why any
    contiguous cut of the row stream can be written shared-nothing and
    merged back byte-identically.
    """

    entries: Tuple[int, int]
    row_start: int
    rows: int

    def head_rows(self, rows_per_shard: int) -> int:
        """Rows before this slice's first global shard boundary."""
        return min(self.rows, (-self.row_start) % rows_per_shard)

    def first_shard_index(self, rows_per_shard: int) -> int:
        """Global index of the first interior shard (if any)."""
        return (self.row_start + self.head_rows(rows_per_shard)) // rows_per_shard

    def interior_shards(self, rows_per_shard: int) -> int:
        """Whole ``rows_per_shard`` slices this worker writes itself."""
        return (self.rows - self.head_rows(rows_per_shard)) // rows_per_shard

    def tail_rows(self, rows_per_shard: int) -> int:
        """Rows past the last interior shard boundary."""
        return (
            self.rows
            - self.head_rows(rows_per_shard)
            - self.interior_shards(rows_per_shard) * rows_per_shard
        )


def plan_row_shards(
    counts: Sequence[int], workers: int, rows_per_shard: int
) -> List[RowShard]:
    """Partition pending measurements into row-balanced contiguous slices.

    ``counts[i]`` is the exact sample-row count pending measurement ``i``
    will produce (from
    :meth:`~repro.atlas.api.transport.Transport.results_count`).  Cuts
    happen only *between* measurements — a window is one worker's unit of
    synthesis — placed where the cumulative row count crosses each
    balanced target ``total * k / workers``, so workers carry near-equal
    row loads even when window sizes vary.  Because every slice knows its
    global ``row_start``, its interior store shards land on exact
    ``rows_per_shard`` boundaries by construction (see
    :class:`RowShard`); no alignment constraint is imposed on the cuts
    themselves.  Empty slices are dropped; slices cover every measurement
    exactly once, in canonical order.
    """
    if workers < 1:
        raise CampaignError(f"workers must be positive: {workers}")
    if rows_per_shard < 1:
        raise CampaignError(f"rows_per_shard must be positive: {rows_per_shard}")
    counts = [int(c) for c in counts]
    if any(c < 0 for c in counts):
        raise CampaignError("negative row count in shard plan")
    total = sum(counts)
    plan: List[RowShard] = []
    cursor = 0
    row_cursor = 0
    for k in range(1, workers + 1):
        target = (total * k) // workers
        cut = cursor
        rows = 0
        while cut < len(counts) and (
            k == workers or row_cursor + rows < target
        ):
            rows += counts[cut]
            cut += 1
        if cut > cursor:
            plan.append(
                RowShard(entries=(cursor, cut), row_start=row_cursor, rows=rows)
            )
        cursor = cut
        row_cursor += rows
    return plan


class Campaign:
    """One full measurement campaign against a platform.

    All platform traffic goes through a
    :class:`~repro.atlas.api.transport.Transport` seam; attach one built
    with a fault profile to chaos-test the collection pipeline.
    """

    def __init__(
        self,
        platform: AtlasPlatform,
        scale: CampaignScale = CampaignScale.SMALL,
        start_time: int = CAMPAIGN_START_TS,
        api_key: str = None,
        transport: Transport = None,
        fast_path: str = "auto",
        obs=None,
    ):
        self.platform = platform
        self.transport = transport if transport is not None else Transport(platform)
        if self.transport.platform is not platform:
            raise CampaignError("transport is bound to a different platform")
        # One observability context serves the whole campaign: a live one
        # passed here takes over the transport seam; otherwise the
        # campaign adopts whatever the transport carries (NULL_OBS by
        # default, making uninstrumented runs free).
        obs = ensure_obs(obs)
        if obs.enabled:
            self.transport.bind_obs(obs)
        self.obs = self.transport.obs
        if fast_path not in FAST_PATH_MODES:
            raise CampaignError(
                f"fast_path must be one of {FAST_PATH_MODES}: {fast_path!r}"
            )
        self.fast_path = fast_path
        self.scale = scale
        self.start_time = int(start_time)
        self.stop_time = self.start_time + scale.duration_s
        if api_key is None:
            api_key = self._provision_account()
        self.api_key = api_key
        self.plan = self._make_plan()
        self.measurement_ids: List[int] = []
        self._msm_id_by_target: Dict[str, int] = {}
        self.collection_stats = CollectionStats()
        #: Fault/retry accounting of parallel-collection worker
        #: transports, folded into :meth:`transport_stats`.
        self._worker_transport_stats: List[Dict[str, object]] = []
        #: Per-worker *process* metrics of the most recent direct-to-store
        #: collection — rows, bytes written, wall-clock rows/s, peak RSS —
        #: in shard order.  Wall-clock numbers live here, out-of-band,
        #: precisely so the deterministic obs snapshot stays byte-stable.
        self.worker_process_stats: List[Dict[str, object]] = []
        #: Live shard writer while a store-backed collection streams
        #: merged records to disk (see :meth:`collect`); ``None``
        #: otherwise.  Records always reach :meth:`_merge_record` in
        #: canonical fleet order — serial or parallel — so the shards it
        #: cuts are byte-identical at any worker count.
        self._store_writer = None
        #: :class:`~repro.core.supervisor.SupervisionReport` of the most
        #: recent supervised collection (``None`` otherwise); surfaced by
        #: :func:`repro.core.completeness.health_report`.
        self.supervision = None

    @classmethod
    def from_paper(
        cls,
        scale: CampaignScale = CampaignScale.SMALL,
        seed: int = 0,
        faults=None,
        fast_path: str = "auto",
        obs=None,
    ) -> "Campaign":
        """Build a campaign with a fresh platform, paper defaults.

        ``faults`` takes a chaos profile name (``"flaky"`` / ``"outage"``
        / ``"hostile"``) or :class:`~repro.atlas.faults.FaultProfile`;
        ``fast_path`` one of :data:`FAST_PATH_MODES`; ``obs`` an optional
        :class:`~repro.obs.Obs` context to instrument the run.
        """
        platform = AtlasPlatform(seed=seed)
        transport = Transport(platform, faults=faults)
        return cls(
            platform, scale=scale, transport=transport, fast_path=fast_path, obs=obs
        )

    @classmethod
    def from_provenance(
        cls, provenance: Dict[str, object], fast_path: str = "auto", obs=None
    ) -> "Campaign":
        """Rebuild the campaign a store's provenance record describes.

        The inverse of :func:`repro.store.catalog.campaign_provenance`:
        given a committed store's provenance dict, reconstruct a campaign
        whose collection produces those exact bytes — the foundation of
        surgical store repair, which re-synthesizes only damaged windows
        through this campaign's deterministic fetch path.
        """
        try:
            scale = next(
                s for s in CampaignScale if s.label == str(provenance["scale"])
            )
            campaign = cls.from_paper(
                scale=scale,
                seed=int(provenance["seed"]),
                faults=str(provenance["fault_profile"]),
                fast_path=fast_path,
                obs=obs,
            )
        except (KeyError, TypeError, ValueError, StopIteration) as exc:
            raise CampaignError(
                f"provenance record does not describe a campaign: {exc!r}"
            ) from exc
        campaign.start_time = int(provenance["start_time"])
        campaign.stop_time = int(provenance["stop_time"])
        # The remaining provenance fields are functions of scale; a
        # mismatch means the record came from an incompatible build.
        derived = {
            "interval_s": int(scale.interval_s),
            "stop_time": campaign.start_time + scale.duration_s,
            "packets": int(campaign.plan.packets),
        }
        for key, expected in derived.items():
            if int(provenance[key]) != expected:
                raise CampaignError(
                    f"provenance field {key}={provenance[key]!r} does not match "
                    f"this build's {scale.label!r} campaign ({expected})"
                )
        # start_time shifted the window: rebuild the plan against it.
        campaign.plan = campaign._make_plan()
        return campaign

    # -- planning --------------------------------------------------------------

    def _provision_account(self) -> str:
        """Register the research account with the raised quota the paper's
        acknowledgements thank the Atlas team for."""
        account = CreditAccount(
            key="REPRO-RESEARCH-KEY",
            balance=1_000_000_000,
            daily_limit=10_000_000,
        )
        self.platform.register_account(account)
        return account.key

    def _make_plan(self) -> CampaignPlan:
        by_continent: Dict[str, List[int]] = {}
        by_country: Dict[str, List[Probe]] = {}
        for probe in self.platform.probes:
            by_country.setdefault(probe.country_code, []).append(probe)
        for country_probes in by_country.values():
            country_probes.sort(key=lambda p: p.probe_id)
            count = self.scale.vantage_count(len(country_probes))
            # Stride through the country's probes instead of taking a
            # prefix, so the subsample stays representative.
            stride = max(1, len(country_probes) // count)
            chosen = country_probes[::stride][:count]
            for probe in chosen:
                by_continent.setdefault(probe.continent, []).append(probe.probe_id)
        return CampaignPlan(
            scale=self.scale,
            start_time=self.start_time,
            stop_time=self.stop_time,
            vantage_ids_by_continent={
                continent: tuple(sorted(ids))
                for continent, ids in by_continent.items()
            },
        )

    def _vantage_ids_for_target(self, vm: TargetVM) -> Tuple[int, ...]:
        """Probe ids measuring this target (same continent + §4.1 fallbacks)."""
        target_continent = vm.region.continent
        ids: List[int] = list(
            self.plan.vantage_ids_by_continent.get(target_continent, ())
        )
        for source_continent, fallbacks in (
            (continent, adjacent_target_continents(continent))
            for continent in self.plan.vantage_ids_by_continent
        ):
            if target_continent in fallbacks:
                ids.extend(self.plan.vantage_ids_by_continent[source_continent])
        return tuple(sorted(set(ids)))

    # -- execution ------------------------------------------------------------

    def create_measurements(self) -> List[int]:
        """Register one periodic ping per target region via the client API.

        Idempotent and resumable: each created target is tracked, so a
        run interrupted mid-loop (e.g. by a
        :class:`~repro.errors.QuotaExceededError`) can simply be retried
        — already-created measurements are skipped, never duplicated,
        and a call with everything created returns the existing ids.
        """
        for vm in self.platform.fleet:
            if vm.key in self._msm_id_by_target:
                continue
            vantage_ids = self._vantage_ids_for_target(vm)
            if not vantage_ids:
                raise CampaignError(
                    f"no vantage points for target {vm.key} "
                    f"({vm.region.continent})"
                )
            ping = Ping(
                target=self.platform.hostname_for(vm),
                description=f"latency-shears {vm.key}",
                interval=self.scale.interval_s,
                packets=self.plan.packets,
            )
            source = AtlasSource(
                type="probes",
                value=",".join(str(pid) for pid in vantage_ids),
                requested=len(vantage_ids),
            )
            ok, response = AtlasCreateRequest(
                measurements=[ping],
                sources=[source],
                start_time=self.start_time,
                stop_time=self.stop_time,
                key=self.api_key,
                transport=self.transport,
            ).create()
            if not ok:
                self._sync_measurement_ids()
                raise CampaignError(
                    f"measurement creation failed for {vm.key}: "
                    f"{response['error']['detail']}"
                )
            self._msm_id_by_target[vm.key] = response["measurements"][0]
        self._sync_measurement_ids()
        return self.measurement_ids

    def _sync_measurement_ids(self) -> None:
        """Rebuild the fleet-ordered id list from the created-target map."""
        self.measurement_ids = [
            self._msm_id_by_target[vm.key]
            for vm in self.platform.fleet
            if vm.key in self._msm_id_by_target
        ]

    def collect(
        self,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
        dataset: CampaignDataset = None,
        workers=None,
        store=None,
        worker_faults=None,
        executor: str = "auto",
        direct: str = "auto",
    ) -> CampaignDataset:
        """Fetch and parse results into a dataset.

        ``start``/``stop`` bound the collection window (Unix seconds),
        supporting the paper's mode of operation — "our measurements are
        ongoing" — where analysis runs on the data gathered so far.
        Omitted bounds default to the campaign's own window.

        Pass the ``checkpoint`` and partial ``dataset`` carried by a
        :class:`~repro.errors.CollectionInterruptedError` to resume an
        interrupted collection without duplicating samples.

        ``workers`` (an int, ``"auto"``, or ``None`` for serial) fans the
        fetch out over a :class:`ParallelCollector`; the frozen dataset
        is byte-identical to a serial run either way.

        ``store`` (a directory path or
        :class:`~repro.store.CampaignCatalog`) makes the collection
        collect-once/analyze-many: when the catalog already holds a
        committed store for this campaign's fingerprint, the dataset is
        re-opened from it (verified, zero-copy) without touching the
        platform; otherwise the collection runs normally while streaming
        its merged records into a new store, committed only when the
        window completes.

        ``worker_faults`` (a :class:`~repro.atlas.faults.WorkerFaultProfile`
        or its name) runs the collection under a
        :class:`~repro.core.supervisor.Supervisor`: workers crash and
        hang on the simulated clock, a watchdog reassigns their shards,
        and a degraded completion is reported instead of raised.

        ``executor`` picks the parallel fan-out (``"process"`` /
        ``"thread"`` / ``"auto"``); ``direct`` gates the shared-nothing
        direct-to-store write path (``"auto"`` uses it whenever eligible,
        ``"on"`` demands it, ``"off"`` forces the stitched record path).
        Either way the committed store bytes are identical.
        """
        if direct not in ("auto", "on", "off"):
            raise CampaignError(
                f"direct must be 'auto', 'on', or 'off': {direct!r}"
            )
        if store is not None:
            return self._collect_stored(
                store,
                workers=workers,
                worker_faults=worker_faults,
                executor=executor,
                direct=direct,
            )
        if direct == "on":
            raise CampaignError(
                "direct='on' requires a store: the direct path writes "
                "shards, not an in-memory dataset"
            )
        if not self.measurement_ids:
            raise CampaignError("create_measurements() must run first")
        if dataset is None:
            dataset = CampaignDataset(
                self.platform.probes, self.platform.fleet, obs=self.obs
            )
        self.collect_into(
            dataset,
            start=start,
            stop=stop,
            checkpoint=checkpoint,
            workers=workers,
            worker_faults=worker_faults,
            executor=executor,
        )
        dataset.freeze()
        return dataset

    def _collect_stored(
        self, store, workers=None, worker_faults=None, executor="auto",
        direct="auto",
    ) -> CampaignDataset:
        """Store-backed collection: cache hit or collect-and-commit.

        Full-window collections only — the fingerprint names the whole
        campaign, so partial windows, resumes, and pre-seeded datasets
        take the plain :meth:`collect` path and persist with
        :meth:`~repro.core.dataset.CampaignDataset.save` afterwards.
        """
        from repro.store import CampaignCatalog, campaign_provenance

        catalog = CampaignCatalog.ensure(store)
        cached = catalog.lookup(self, obs=self.obs)
        if cached is not None:
            self.obs.inc("store_cache_hits_total")
            self.obs.event(
                "store.cache_hit", path=str(cached.path), rows=cached.rows
            )
            _log.info("store cache hit: %s (%d rows)", cached.path, cached.rows)
            return cached.dataset(
                self.platform.probes, self.platform.fleet, obs=self.obs
            )
        self.obs.inc("store_cache_misses_total")
        if not self.measurement_ids:
            self.create_measurements()
        if direct != "off":
            blocker = self._direct_blocker(workers, executor)
            if blocker is None:
                return DirectStoreCollector(
                    self,
                    catalog,
                    workers=workers,
                    worker_faults=worker_faults,
                ).collect()
            if direct == "on":
                raise CampaignError(f"direct='on' but {blocker}")
        dataset = CampaignDataset(
            self.platform.probes, self.platform.fleet, obs=self.obs
        )
        writer = catalog.writer(self, obs=self.obs)
        with self.obs.span(
            "store.write",
            path=str(writer.path),
            fingerprint=writer.path.name,
        ):
            self._store_writer = writer
            try:
                self.collect_into(
                    dataset,
                    workers=workers,
                    worker_faults=worker_faults,
                    executor=executor,
                )
            except BaseException:
                writer.abort()
                raise
            finally:
                self._store_writer = None
            dataset.freeze()
            if self.supervision is not None and self.supervision.degraded:
                # A degraded window is not this fingerprint's dataset:
                # committing it would poison every future cache hit.
                writer.abort()
                _log.warning(
                    "degraded supervised collection: store NOT committed "
                    "(%d windows quarantined)",
                    len(self.supervision.quarantined),
                )
                return dataset
            writer.finalize()
        _log.info(
            "store committed: %s (%d rows, provenance %s)",
            writer.path, writer.rows_written, campaign_provenance(self),
        )
        return dataset

    def _direct_blocker(self, workers, executor: str) -> Optional[str]:
        """Why the shared-nothing direct-to-store path cannot run, or ``None``.

        The direct path needs (a) more than one worker, (b) fork-based
        process workers, (c) the columnar fast path, and (d) a
        precomputable row stream — which
        :meth:`~repro.atlas.api.transport.Transport.results_count` only
        vouches for on a clean wire.  Anything else falls back to the
        stitched record path, which commits identical bytes.
        """
        if resolve_workers(workers) <= 1:
            return "the direct store path needs workers > 1"
        if executor == "thread":
            return "the direct store path needs process workers"
        if not hasattr(os, "fork"):
            return "this platform has no os.fork for process workers"
        if self.fast_path == "off":
            return "fast_path='off' disables columnar synthesis"
        if self.transport.injector is not None:
            return (
                "a fault injector is attached: the row stream is not "
                "precomputable under chaos"
            )
        if self.measurement_ids and (
            self.transport.results_count(self.measurement_ids[0]) is None
        ):
            return "the transport cannot serve columnar results"
        return None

    def scan(self, store):
        """An out-of-core :class:`~repro.store.scan.Scan` over this
        campaign's committed store.

        The store must already be committed (a prior
        ``collect(store=...)`` against the same fingerprint); this never
        collects.  The scan is wired to the catalog's shared aggregate
        cache, so repeated summaries/ECDFs over unchanged shards are
        cache hits and appending windows re-derives only new shards'
        partials.
        """
        from repro.store import (
            CampaignCatalog,
            campaign_fingerprint,
            campaign_provenance,
        )

        catalog = CampaignCatalog.ensure(store)
        scan = catalog.scan(self, obs=self.obs)
        if scan is None:
            fingerprint = campaign_fingerprint(campaign_provenance(self))
            raise CampaignError(
                f"no committed store for fingerprint {fingerprint[:12]}… in "
                f"{catalog.root}; run collect(store=...) first"
            )
        return scan

    def collect_into(
        self,
        dataset: CampaignDataset,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
        workers=None,
        worker_faults=None,
        executor: str = "auto",
    ) -> None:
        """Append one collection window into an existing (unfrozen) dataset.

        Without a checkpoint, windows must not overlap across calls or
        samples will duplicate — the platform regenerates results
        deterministically per window.  With one, each measurement's
        high-water mark guards against exactly that: re-collecting an
        already-covered window is a no-op.

        Hardened for chaos collection: each measurement's window is
        fetched through the transport (which retries transient faults),
        duplicated entries are dropped, malformed blobs are quarantined
        and counted instead of crashing, and samples land in the dataset
        only once the whole measurement window arrived — so an
        interruption (raised as
        :class:`~repro.errors.CollectionInterruptedError` with the
        checkpoint, partial dataset, and failing measurement id attached)
        never leaves a half-collected measurement behind.

        With ``workers`` beyond 1 the window is collected by a
        :class:`ParallelCollector` instead of the serial loop below; both
        paths build the same per-measurement records and merge them in
        canonical fleet order, so their output is identical byte for byte.
        """
        worker_count = resolve_workers(workers)
        if worker_faults is not None:
            from repro.atlas.faults import get_worker_profile
            from repro.core.supervisor import Supervisor

            profile = get_worker_profile(worker_faults)
            if not profile.is_noop:
                Supervisor(
                    self, workers=worker_count, worker_faults=profile
                ).collect_into(
                    dataset, start=start, stop=stop, checkpoint=checkpoint
                )
                return
        if worker_count > 1:
            ParallelCollector(
                self, workers=worker_count, executor=executor
            ).collect_into(
                dataset, start=start, stop=stop, checkpoint=checkpoint
            )
            return
        window_start = self.start_time if start is None else int(start)
        window_stop = self.stop_time if stop is None else int(stop)
        pending = self._pending(window_start, window_stop, checkpoint)
        skipped = len(self.measurement_ids) - len(pending)
        with self.obs.span(
            "campaign.collect", workers=1, measurements=len(pending)
        ):
            if skipped:
                self.obs.event("campaign.resume_skip", measurements=skipped)
            for index, msm_id, fetch_from in pending:
                vm = self.platform.fleet[index]
                try:
                    record = self._fetch_measurement(
                        self.transport, index, msm_id, vm, fetch_from, window_stop
                    )
                except TransportError as exc:
                    self.collection_stats.interruptions += 1
                    self.obs.inc("campaign_interruptions_total")
                    _log.warning(
                        "collection interrupted at measurement %d (%s): %s",
                        msm_id, vm.key, exc,
                    )
                    raise CollectionInterruptedError(
                        f"measurement {msm_id} ({vm.key}): {exc}",
                        checkpoint=checkpoint,
                        dataset=dataset,
                        msm_id=msm_id,
                    ) from exc
                self._merge_record(dataset, record, checkpoint, window_stop)

    def _pending(
        self,
        window_start: int,
        window_stop: int,
        checkpoint: Optional[CollectionCheckpoint],
    ) -> List[Tuple[int, int, int]]:
        """Measurements still owing samples for a window, in fleet order.

        Returns ``(fleet_index, msm_id, fetch_from)`` triples; an entry
        whose checkpoint mark already covers the window is skipped, which
        is what makes re-collection a no-op and a resume loss-free.
        """
        pending: List[Tuple[int, int, int]] = []
        for index, msm_id in enumerate(self.measurement_ids):
            fetch_from = window_start
            if checkpoint is not None:
                fetch_from = max(
                    window_start, checkpoint.collected_through(msm_id, window_start)
                )
            if fetch_from >= window_stop:
                continue
            pending.append((index, msm_id, fetch_from))
        return pending

    def _fetch_measurement(
        self,
        transport: Transport,
        index: int,
        msm_id: int,
        vm: TargetVM,
        fetch_from: int,
        window_stop: int,
    ) -> MeasurementRecord:
        """Fetch + clean one measurement window into a mergeable record.

        The shared unit of work of the serial and parallel collectors;
        raises :class:`~repro.errors.TransportError` when the transport
        gives out terminally.  Thread-safe: touches no campaign state
        beyond read-only platform data and the passed-in transport.

        With ``fast_path`` enabled the window is fetched as columns in
        one vectorized synthesis call — no per-sample dicts, no parsing —
        whenever the transport can serve it (clean wire, ping
        measurement).  The columnar fetch is bit-identical to the scalar
        fetch-and-parse, so records from either path merge into the same
        dataset bytes; whenever it cannot apply (fault injection needs
        the raw dict stream to mangle) the scalar path below runs
        unchanged.

        Instrumentation lands on the *passed transport's* context (a
        worker's fetches accumulate in that worker's registry, merged
        back in shard order), one span and one path counter per window —
        never per sample.
        """
        obs = transport.obs
        with obs.span("campaign.fetch", msm_id=msm_id, target=vm.key):
            if self.fast_path != "off":
                columns = transport.results_columns(
                    msm_id, start=fetch_from, stop=window_stop
                )
                if columns is not None:
                    obs.inc("campaign_fetch_path_total", path="columnar")
                    return MeasurementRecord(
                        index=index,
                        msm_id=msm_id,
                        target_key=vm.key,
                        probe_ids=columns.probe_ids,
                        timestamps=columns.timestamps,
                        rtt_min=columns.rtt_min,
                        rtt_avg=columns.rtt_avg,
                        sent=columns.sent,
                        rcvd=columns.rcvd,
                        quarantined=0,
                        duplicates_dropped=0,
                    )
                if self.fast_path == "on":
                    raise CampaignError(
                        f"fast_path='on' but the transport cannot serve measurement "
                        f"{msm_id} columnarly (chaos transport or non-ping)"
                    )
            obs.inc("campaign_fetch_path_total", path="scalar")
            raws = transport.results(msm_id, start=fetch_from, stop=window_stop)
            cleaned, quarantined, duplicates = self._clean(raws)
            record = MeasurementRecord(
                index=index,
                msm_id=msm_id,
                target_key=vm.key,
                probe_ids=[],
                timestamps=[],
                rtt_min=[],
                rtt_avg=[],
                sent=[],
                rcvd=[],
                quarantined=quarantined,
                duplicates_dropped=duplicates,
            )
            for parsed in cleaned:
                record.probe_ids.append(parsed.probe_id)
                record.timestamps.append(parsed.created_timestamp)
                record.rtt_min.append(
                    parsed.rtt_min if parsed.succeeded else math.nan
                )
                record.rtt_avg.append(
                    parsed.rtt_average if parsed.succeeded else math.nan
                )
                record.sent.append(parsed.packets_sent)
                record.rcvd.append(parsed.packets_received)
            return record

    def _merge_record(
        self,
        dataset: CampaignDataset,
        record: MeasurementRecord,
        checkpoint: Optional[CollectionCheckpoint],
        window_stop: int,
    ) -> None:
        """Land one record: bulk-append samples, account, advance the mark."""
        if self._store_writer is not None and record.sample_count:
            # Stream the same rows the dataset receives.  Records arrive
            # here in canonical fleet order on both the serial and the
            # parallel path, and the store-backed collection never
            # dedups, so the shard stream equals the frozen columns.
            self._store_writer.append_batch(
                record.probe_ids,
                dataset.target_index_of(record.target_key),
                record.timestamps,
                record.rtt_min,
                record.rtt_avg,
                record.sent,
                record.rcvd,
            )
        stats = self.collection_stats
        stats.samples_appended += dataset.extend_samples(
            record.target_key,
            record.probe_ids,
            record.timestamps,
            record.rtt_min,
            record.rtt_avg,
            record.sent,
            record.rcvd,
        )
        stats.quarantined += record.quarantined
        stats.duplicates_dropped += record.duplicates_dropped
        stats.measurements_collected += 1
        obs = self.obs
        obs.inc("campaign_measurements_collected_total")
        if record.quarantined:
            obs.inc("campaign_quarantined_total", record.quarantined)
        if record.duplicates_dropped:
            obs.inc("campaign_duplicates_dropped_total", record.duplicates_dropped)
        if checkpoint is not None:
            checkpoint.mark(record.msm_id, window_stop)
            obs.event(
                "checkpoint.mark", msm_id=record.msm_id, through=window_stop
            )

    @staticmethod
    def _clean(raws: List) -> Tuple[List[PingResult], int, int]:
        """Parse a fetched window: dedup on (probe, timestamp), quarantine
        anything malformed.  Returns results in first-seen order — the
        platform's canonical probe-major order — plus the quarantined and
        duplicate counts (the caller accounts them at merge time, keeping
        this safe to run on any worker)."""
        quarantined = 0
        duplicates = 0
        cleaned: Dict[Tuple[int, int], PingResult] = {}
        for raw in raws:
            try:
                parsed = Result.get(raw)
            except ResultParseError:
                quarantined += 1
                continue
            if not isinstance(parsed, PingResult):
                quarantined += 1
                continue
            key = (parsed.probe_id, parsed.created_timestamp)
            if key in cleaned:
                duplicates += 1
                continue
            cleaned[key] = parsed
        return list(cleaned.values()), quarantined, duplicates

    def transport_stats(self) -> Dict[str, object]:
        """Fault/retry accounting aggregated across the main transport and
        any parallel-collection worker transports.

        Scoped fault schedules make each measurement's fault outcome
        deterministic, so for a completed collection the aggregated
        ``faults``, ``retries``, and ``breakers_opened`` equal a serial
        run's exactly.  ``simulated_sleep_s`` matches up to float
        rounding (each engine rounds its own total to the millisecond
        before they are summed).  ``budget_left`` is summed across
        engines (each worker carries its own budget).
        """
        totals = dict(self.transport.stats())
        totals["faults"] = dict(totals["faults"])
        for extra in self._worker_transport_stats:
            faults = totals["faults"]
            for kind, count in extra["faults"].items():
                faults[kind] = faults.get(kind, 0) + count
            totals["retries"] += extra["retries"]
            totals["budget_left"] += extra["budget_left"]
            totals["simulated_sleep_s"] = round(
                totals["simulated_sleep_s"] + extra["simulated_sleep_s"], 3
            )
            totals["breakers_opened"] += extra["breakers_opened"]
        totals["faults"] = {
            kind: totals["faults"][kind] for kind in sorted(totals["faults"])
        }
        return totals

    def run(
        self,
        workers=None,
        store=None,
        worker_faults=None,
        executor: str = "auto",
        direct: str = "auto",
    ) -> CampaignDataset:
        """Create measurements and collect everything.

        With ``store`` a cache hit skips measurement creation entirely —
        the store already holds the campaign's full frozen dataset.
        """
        if store is not None:
            return self.collect(
                workers=workers,
                store=store,
                worker_faults=worker_faults,
                executor=executor,
                direct=direct,
            )
        self.create_measurements()
        return self.collect(
            workers=workers,
            worker_faults=worker_faults,
            executor=executor,
            direct=direct,
        )

    # -- reporting convenience ---------------------------------------------------

    def headline_report(self, dataset: CampaignDataset):
        """Shortcut to :func:`repro.core.report.headline_report`."""
        from repro.core.report import headline_report

        return headline_report(dataset)


#: Campaign a forked worker process inherits.  Set (in the parent) just
#: before the process pool spawns and cleared right after collection;
#: fork-started children carry the copy-on-write reference, which moves
#: the whole platform across without pickling a byte of it.
_FORK_CAMPAIGN: Optional[Campaign] = None


@dataclass
class _ShardFailure:
    """A terminal transport failure inside one worker's shard."""

    index: int
    msm_id: int
    target_key: str
    detail: str


def _collect_shard(
    campaign: Campaign,
    entries: Sequence[Tuple[int, int, int]],
    window_stop: int,
    shard_index: int = 0,
):
    """Run one worker's shard on a fresh transport clone.

    Walks the shard's ``(fleet_index, msm_id, fetch_from)`` entries in
    canonical order and stops at the first terminal failure — exactly
    what the serial collector would have done from that point — recording
    it instead of raising so the merge can pick the earliest failure
    across shards.  Returns ``(records, transport_stats, failure,
    obs_export)``; the export carries the worker context's metrics and
    spans back for the shard-ordered merge (``None`` when
    uninstrumented).
    """
    transport = campaign.transport.worker_clone()
    records: List[MeasurementRecord] = []
    failure: Optional[_ShardFailure] = None
    with transport.obs.span(
        "campaign.shard", shard=shard_index, measurements=len(entries)
    ):
        for index, msm_id, fetch_from in entries:
            vm = campaign.platform.fleet[index]
            try:
                record = campaign._fetch_measurement(
                    transport, index, msm_id, vm, fetch_from, window_stop
                )
            except TransportError as exc:
                failure = _ShardFailure(index, msm_id, vm.key, str(exc))
                break
            records.append(record)
    return records, transport.stats(), failure, transport.obs.export()


def _forked_shard(entries, window_stop, shard_index=0):
    """Process-pool entry point: shard work against the forked campaign."""
    return _collect_shard(_FORK_CAMPAIGN, entries, window_stop, shard_index)


class ParallelCollector:
    """Sharded parallel collection with a deterministic merge.

    Splits the pending measurement list into contiguous per-worker shards
    (:func:`plan_shards`), fetches each shard through its own
    :meth:`~repro.atlas.api.transport.Transport.worker_clone`, and merges
    the shard-local :class:`MeasurementRecord` buffers into the dataset
    in canonical fleet order.  Because fault and retry schedules are
    scoped per measurement window, every record is byte-identical to what
    the serial collector would have produced — so the frozen dataset,
    checkpoint, and collection stats match a serial run exactly, under
    every fault profile.

    **Interruption is prefix-consistent**: if any shard fails terminally,
    only records *before* the earliest failing measurement (in canonical
    order) are merged and checkpointed; completed work past the failure
    is discarded so the carried checkpoint + partial dataset are exactly
    a serial run's interruption state, and a resume reproduces the serial
    byte stream.

    ``executor`` selects ``"process"`` (fork-based, true parallelism —
    the default where :func:`os.fork` exists) or ``"thread"`` (portable;
    identical output, little speedup under the GIL).
    """

    def __init__(self, campaign: Campaign, workers=None, executor: str = "auto"):
        self.campaign = campaign
        self.workers = resolve_workers("auto" if workers is None else workers)
        if executor == "auto":
            executor = "process" if hasattr(os, "fork") else "thread"
        if executor not in ("process", "thread"):
            raise CampaignError(f"unknown executor {executor!r}")
        if executor == "process" and not hasattr(os, "fork"):
            # Catch this here, not as a pickle error from deep inside a
            # spawn-context pool: forked workers inherit the campaign by
            # copy-on-write, and no other start method can.
            raise CampaignError(
                "executor='process' needs os.fork (unavailable on this "
                "platform); use executor='thread'"
            )
        self.executor = executor

    def collect(
        self,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
        dataset: CampaignDataset = None,
    ) -> CampaignDataset:
        """Parallel counterpart of :meth:`Campaign.collect`."""
        campaign = self.campaign
        if not campaign.measurement_ids:
            raise CampaignError("create_measurements() must run first")
        if dataset is None:
            dataset = CampaignDataset(
                campaign.platform.probes, campaign.platform.fleet, obs=campaign.obs
            )
        self.collect_into(dataset, start=start, stop=stop, checkpoint=checkpoint)
        dataset.freeze()
        return dataset

    def collect_into(
        self,
        dataset: CampaignDataset,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
    ) -> None:
        """Parallel counterpart of :meth:`Campaign.collect_into`."""
        campaign = self.campaign
        if not campaign.measurement_ids:
            raise CampaignError("create_measurements() must run first")
        window_start = campaign.start_time if start is None else int(start)
        window_stop = campaign.stop_time if stop is None else int(stop)
        pending = campaign._pending(window_start, window_stop, checkpoint)
        if not pending:
            return
        if self.workers <= 1 or len(pending) <= 1:
            campaign.collect_into(
                dataset, start=window_start, stop=window_stop, checkpoint=checkpoint
            )
            return
        shards = [
            [pending[i] for i in shard]
            for shard in plan_shards(len(pending), self.workers)
        ]
        skipped = len(campaign.measurement_ids) - len(pending)
        with campaign.obs.span(
            "campaign.collect",
            workers=len(shards),
            executor=self.executor,
            measurements=len(pending),
        ):
            if skipped:
                campaign.obs.event("campaign.resume_skip", measurements=skipped)
            outcomes = self._run_shards(shards, window_stop)
            records: List[MeasurementRecord] = []
            failures: List[_ShardFailure] = []
            # Worker contexts merge in shard (canonical) order, which is
            # what keeps the combined snapshot deterministic at a fixed
            # worker count.
            for shard_records, transport_stats, failure, obs_export in outcomes:
                records.extend(shard_records)
                campaign._worker_transport_stats.append(transport_stats)
                campaign.obs.merge(obs_export)
                if failure is not None:
                    failures.append(failure)
            first_failure = min(failures, key=lambda f: f.index, default=None)
            for record in sorted(records, key=lambda r: r.index):
                if first_failure is not None and record.index > first_failure.index:
                    break
                campaign._merge_record(dataset, record, checkpoint, window_stop)
            if first_failure is not None:
                campaign.collection_stats.interruptions += 1
                campaign.obs.inc("campaign_interruptions_total")
                _log.warning(
                    "parallel collection interrupted at measurement %d (%s): %s",
                    first_failure.msm_id,
                    first_failure.target_key,
                    first_failure.detail,
                )
                raise CollectionInterruptedError(
                    f"measurement {first_failure.msm_id} "
                    f"({first_failure.target_key}): {first_failure.detail}",
                    checkpoint=checkpoint,
                    dataset=dataset,
                    msm_id=first_failure.msm_id,
                )

    def _run_shards(self, shards, window_stop):
        if self.executor == "thread":
            pool = ThreadPoolExecutor(max_workers=len(shards))
            try:
                futures = [
                    pool.submit(
                        _collect_shard, self.campaign, shard, window_stop, number
                    )
                    for number, shard in enumerate(shards)
                ]
                return self._drain(futures)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        import multiprocessing

        global _FORK_CAMPAIGN
        context = multiprocessing.get_context("fork")
        _FORK_CAMPAIGN = self.campaign
        try:
            pool = ProcessPoolExecutor(
                max_workers=len(shards), mp_context=context
            )
            try:
                futures = [
                    pool.submit(_forked_shard, shard, window_stop, number)
                    for number, shard in enumerate(shards)
                ]
                return self._drain(futures)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
        finally:
            # Clear even when submission itself raises — a dangling
            # campaign here would pin the whole platform in memory and
            # leak into the next collection's forks.
            _FORK_CAMPAIGN = None

    @staticmethod
    def _drain(futures):
        """Collect shard outcomes in shard order, failing fast.

        Shards are contiguous in canonical order, so once shard ``k``
        reports a terminal failure every record a *later* shard would
        return lies past the failure index and is discarded by the
        prefix-consistent merge anyway — cancel those siblings instead of
        waiting for them.  Shards before ``k`` still complete (their
        records are the prefix).  A cancelled shard simply yields no
        outcome.
        """
        index_of = {future: number for number, future in enumerate(futures)}
        outcomes: Dict[int, object] = {}
        cutoff = len(futures)
        pending = set(futures)
        while pending:
            done, pending = futures_wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future.cancelled():
                    continue
                number = index_of[future]
                outcome = future.result()
                outcomes[number] = outcome
                if outcome[2] is not None and number < cutoff:
                    cutoff = number
                    for later, later_number in index_of.items():
                        if later_number > cutoff:
                            later.cancel()
            # Stop waiting on shards past the cutoff outright — cancel
            # only reaches futures the pool has not started yet.
            pending = {f for f in pending if index_of[f] <= cutoff}
        return [outcomes[n] for n in sorted(outcomes) if n <= cutoff]


#: Exit codes a direct-to-store worker dies with under injected chaos.
#: Distinct from any real Python exit so the parent can tell a scheduled
#: casualty from an actual bug (which sends an ``("error", …)`` payload).
DIRECT_CRASH_EXIT = 86
DIRECT_HANG_EXIT = 87


def _direct_range_worker(
    conn,
    campaign: Campaign,
    entries: Sequence[Tuple[int, int, int, int]],
    row_start: int,
    window_stop: int,
    store_path,
    rows_per_shard: int,
    fs,
    worker_index: int,
    chaos,
    deadline_s: float,
) -> None:
    """Forked worker body: synthesize one row range straight into shards.

    The shared-nothing hot loop — no :class:`MeasurementRecord`, no
    pickled sample buffers, no parent merge.  Each window's columns go
    from the vectorized synthesis call into a
    :class:`~repro.store.writer.ShardRangeWriter` that cuts full interior
    shards under their final global names; only the manifest fragment
    (shard metadata + boundary partials) and per-worker stats return over
    the pipe.  Chaos deaths exit abruptly via :func:`os._exit` — no
    cleanup, exactly like a real crash — leaving partially-written chunks
    for the respawn to overwrite idempotently (same bytes, atomic
    rename).
    """
    import resource
    import time

    from repro.store.writer import ShardRangeWriter

    try:
        started = time.perf_counter()
        transport = campaign.transport.worker_clone()
        obs = transport.obs
        writer = ShardRangeWriter(
            store_path,
            row_start=row_start,
            rows_per_shard=rows_per_shard,
            obs=obs,
            fs=fs,
            durable=True,
        )
        hangs_recovered = 0
        with obs.span(
            "campaign.direct_range",
            worker=worker_index,
            measurements=len(entries),
            row_start=row_start,
        ):
            for index, msm_id, fetch_from, attempt in entries:
                vm = campaign.platform.fleet[index]
                if chaos is not None:
                    fate = chaos.decide(msm_id, fetch_from, window_stop, attempt)
                    if fate == "crash":
                        os._exit(DIRECT_CRASH_EXIT)
                    if fate == "hang":
                        hang_s = chaos.profile.hang_duration_s
                        transport.clock.sleep(hang_s)
                        if hang_s >= deadline_s:
                            os._exit(DIRECT_HANG_EXIT)
                        hangs_recovered += 1
                        obs.inc("supervisor_hangs_recovered_total")
                with obs.span("campaign.fetch", msm_id=msm_id, target=vm.key):
                    columns = transport.results_columns(
                        msm_id, start=fetch_from, stop=window_stop
                    )
                    if columns is None:
                        raise CampaignError(
                            f"direct plan invalidated: measurement {msm_id} "
                            f"lost its columnar path mid-collection"
                        )
                    obs.inc("campaign_fetch_path_total", path="columnar")
                writer.append_batch(
                    columns.probe_ids,
                    index,
                    columns.timestamps,
                    columns.rtt_min,
                    columns.rtt_avg,
                    columns.sent,
                    columns.rcvd,
                )
        fragment = writer.finish()
        wall_s = time.perf_counter() - started
        proc_stats = {
            "worker": worker_index,
            "pid": os.getpid(),
            "rows": fragment.rows,
            "bytes_written": fragment.bytes_written,
            "interior_shards": len(fragment.shards),
            "wall_s": round(wall_s, 4),
            "rows_per_s": round(fragment.rows / wall_s) if wall_s > 0 else 0,
            "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            "hangs_recovered": hangs_recovered,
        }
        payload = ("ok", fragment, transport.stats(), obs.export(), proc_stats)
    except BaseException as exc:  # noqa: BLE001 — must cross the process boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
        conn.close()
        os._exit(1)
    conn.send(payload)
    conn.close()
    os._exit(0)


class DirectStoreCollector:
    """Shared-nothing multiprocess collection straight into a store.

    The parent plans contiguous row ranges (:func:`plan_row_shards`) from
    exact precomputed window row counts
    (:meth:`~repro.atlas.api.transport.Transport.results_count`), forks
    one worker per range, and afterwards only *stitches*: workers stream
    full interior shards to disk themselves and hand back boundary
    partials small enough for a pipe.  The committed manifest is
    byte-identical to a serial write because the shard layout is a pure
    function of the row stream and every worker knows its global row
    offset.

    **Failure is all-or-nothing.**  The manifest is the commit point: a
    worker or parent death at any moment leaves an uncommitted directory
    (invisible to readers, swept eagerly here and by gc).  Worker chaos
    (``worker_faults``) is decided per window-and-attempt exactly like
    :class:`~repro.core.supervisor.Supervisor` — the parent replays the
    same seeded schedule to identify the casualty from its exit code,
    respawns the range with the fatal window's attempt bumped, and past
    ``max_attempts`` quarantines it: the store is *never* committed
    degraded, and the dataset falls back to an in-process collection of
    the surviving windows.
    """

    def __init__(
        self,
        campaign: Campaign,
        catalog,
        workers=None,
        worker_faults=None,
        deadline_s: float = None,
        max_attempts: int = None,
        worker_timeout_s: float = 600.0,
    ):
        import repro.core.supervisor as supervisor_module

        self.campaign = campaign
        self.catalog = catalog
        self.workers = resolve_workers("auto" if workers is None else workers)
        # Resolve the chaos policy through a Supervisor so the two
        # collection paths can never disagree on deadlines, attempt
        # budgets, or the seeded fault schedule.
        policy = supervisor_module.Supervisor(
            campaign,
            workers=self.workers,
            worker_faults="steady" if worker_faults is None else worker_faults,
        )
        self.deadline_s = (
            policy.deadline_s if deadline_s is None else float(deadline_s)
        )
        self.max_attempts = (
            policy.max_attempts if max_attempts is None else int(max_attempts)
        )
        self.worker_timeout_s = float(worker_timeout_s)
        self.chaos = None
        if worker_faults is not None and not policy.chaos.profile.is_noop:
            self.chaos = policy.chaos

    def collect(self) -> CampaignDataset:
        """Run the full campaign window direct-to-store; return the dataset.

        On success the dataset is re-opened from the committed store
        (verified, zero-copy) — the parent never materializes the samples
        it did not itself stitch.
        """
        import multiprocessing

        from repro.core.supervisor import SupervisionReport
        from repro.store.catalog import campaign_fingerprint, campaign_provenance
        from repro.store.writer import assemble_direct_store

        campaign = self.campaign
        catalog = self.catalog
        window_start, window_stop = campaign.start_time, campaign.stop_time
        pending = campaign._pending(window_start, window_stop, None)
        counts: List[int] = []
        for _, msm_id, fetch_from in pending:
            count = campaign.transport.results_count(
                msm_id, start=fetch_from, stop=window_stop
            )
            if count is None:
                raise CampaignError(
                    f"direct store path needs precomputable row counts; "
                    f"measurement {msm_id} has no columnar path"
                )
            counts.append(count)
        plan = plan_row_shards(counts, self.workers, catalog.rows_per_shard)
        provenance = campaign_provenance(campaign)
        fingerprint = campaign_fingerprint(provenance)
        path = catalog.path_for(fingerprint)
        catalog.root.mkdir(parents=True, exist_ok=True)
        report = None
        if self.chaos is not None:
            report = SupervisionReport(
                profile=self.chaos.profile.name,
                workers=len(plan),
                deadline_s=self.deadline_s,
                max_attempts=self.max_attempts,
                windows=len(pending),
            )
        campaign.worker_process_stats = []
        # Per-range work lists carry a per-window attempt counter, bumped
        # only for the window the chaos schedule actually killed.
        ranges = [
            [(i, m, f, 0) for i, m, f in pending[shard.entries[0]:shard.entries[1]]]
            for shard in plan
        ]
        fragments: List[Optional[object]] = [None] * len(plan)
        stats: List[Optional[tuple]] = [None] * len(plan)
        context = multiprocessing.get_context("fork")
        live: Dict[int, tuple] = {}

        def spawn(rid: int) -> None:
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_direct_range_worker,
                args=(
                    sender,
                    campaign,
                    ranges[rid],
                    plan[rid].row_start,
                    window_stop,
                    path,
                    catalog.rows_per_shard,
                    catalog.fs,
                    rid,
                    self.chaos,
                    self.deadline_s,
                ),
            )
            process.start()
            sender.close()
            live[rid] = (process, receiver)

        degraded = False
        with campaign.obs.span(
            "campaign.collect",
            workers=len(plan),
            executor="process",
            direct=True,
            measurements=len(pending),
        ):
            try:
                for rid in range(len(plan)):
                    spawn(rid)
                rid = 0
                while rid < len(plan) and not degraded:
                    process, receiver = live.pop(rid)
                    payload = None
                    timed_out = False
                    try:
                        if receiver.poll(self.worker_timeout_s):
                            payload = receiver.recv()
                        else:
                            timed_out = True
                            process.terminate()
                    except EOFError:
                        payload = None
                    process.join()
                    receiver.close()
                    if payload is not None and payload[0] == "ok":
                        _, fragment, tstats, obs_export, proc_stats = payload
                        fragments[rid] = fragment
                        stats[rid] = (tstats, obs_export, proc_stats)
                        rid += 1
                        continue
                    if payload is not None and payload[0] == "error":
                        raise CampaignError(
                            f"direct worker {rid} failed: {payload[1]}"
                        )
                    if timed_out:
                        raise CampaignError(
                            f"direct worker {rid} produced nothing within "
                            f"{self.worker_timeout_s:.0f}s; terminated"
                        )
                    degraded = self._handle_death(
                        rid, process.exitcode, ranges[rid], window_stop, report
                    )
                    if not degraded:
                        report.respawns += 1
                        campaign.obs.inc("supervisor_respawns_total")
                        spawn(rid)
            except BaseException:
                self._abort(live, path)
                raise
            if degraded:
                self._abort(live, path)
                campaign.supervision = report
                campaign.obs.event(
                    "supervisor.degraded",
                    quarantined=len(report.quarantined),
                    collected=report.windows - len(report.quarantined),
                )
                _log.warning(
                    "degraded direct collection: store NOT committed "
                    "(%d windows quarantined)",
                    len(report.quarantined),
                )
                return self._degraded_dataset(pending, window_stop, report)
            # All ranges landed: merge worker stats in shard order, then
            # stitch the boundary shards and commit.
            for tstats, obs_export, proc_stats in stats:
                campaign._worker_transport_stats.append(tstats)
                campaign.obs.merge(obs_export)
                campaign.worker_process_stats.append(proc_stats)
                if report is not None:
                    report.hangs_recovered += proc_stats["hangs_recovered"]
            manifest = assemble_direct_store(
                path,
                [fragment for fragment in fragments if fragment is not None],
                provenance=provenance,
                rows_per_shard=catalog.rows_per_shard,
                obs=campaign.obs,
                fs=catalog.fs,
                durable=True,
            )
        campaign.collection_stats.measurements_collected += len(pending)
        campaign.collection_stats.samples_appended += manifest.rows
        if report is not None:
            report.collected = len(pending)
            campaign.supervision = report
        _log.info(
            "store committed (direct): %s (%d rows, %d workers)",
            path, manifest.rows, len(plan),
        )
        reader = catalog.open(fingerprint, obs=campaign.obs)
        return reader.dataset(
            campaign.platform.probes, campaign.platform.fleet, obs=campaign.obs
        )

    def _handle_death(
        self, rid: int, exitcode, entries, window_stop: int, report
    ) -> bool:
        """Account one worker casualty; returns True when it quarantines.

        The worker died without a payload, so the parent *replays* the
        deterministic chaos schedule over the range to locate the fatal
        window — the same ``(msm_id, window, attempt)``-keyed draw the
        worker made — and cross-checks the exit code against the expected
        fate.  A mismatch means a real bug, not scheduled chaos, and
        raises.
        """
        campaign = self.campaign
        position, kind = self._expected_fate(entries, window_stop)
        expected_exit = {
            "crash": DIRECT_CRASH_EXIT, "hung": DIRECT_HANG_EXIT
        }.get(kind)
        if position is None or exitcode != expected_exit:
            raise CampaignError(
                f"direct worker {rid} died unexpectedly (exit {exitcode}, "
                f"expected fate {kind or 'none'})"
            )
        if kind == "crash":
            report.crashes += 1
            campaign.obs.inc("supervisor_crashes_total")
        else:
            report.hangs += 1
            campaign.obs.inc("supervisor_hangs_total")
        index, msm_id, fetch_from, attempt = entries[position]
        _log.warning(
            "direct worker %d died (%s) at measurement %d, attempt %d",
            rid, kind, msm_id, attempt + 1,
        )
        if attempt + 1 >= self.max_attempts:
            target = campaign.platform.fleet[index].key
            report.quarantined.append((msm_id, target))
            campaign.obs.inc("supervisor_quarantined_total")
            _log.warning(
                "window quarantined after %d attempts: measurement %d (%s)",
                attempt + 1, msm_id, target,
            )
            return True
        entries[position] = (index, msm_id, fetch_from, attempt + 1)
        return False

    def _expected_fate(self, entries, window_stop: int):
        """First scheduled death in a range: ``(position, kind)`` or Nones."""
        if self.chaos is None:
            return None, None
        for position, (_, msm_id, fetch_from, attempt) in enumerate(entries):
            fate = self.chaos.decide(msm_id, fetch_from, window_stop, attempt)
            if fate == "crash":
                return position, "crash"
            if (
                fate == "hang"
                and self.chaos.profile.hang_duration_s >= self.deadline_s
            ):
                return position, "hung"
        return None, None

    def _abort(self, live: Dict[int, tuple], path) -> None:
        """Kill surviving workers and sweep the uncommitted directory.

        Never touches a committed store: if a manifest exists the
        directory is someone's live data, not this collection's debris.
        """
        import shutil

        from repro.store.format import is_store_dir

        for process, receiver in live.values():
            process.terminate()
            process.join()
            receiver.close()
        live.clear()
        if not is_store_dir(path):
            shutil.rmtree(path, ignore_errors=True)

    def _degraded_dataset(
        self, pending, window_stop: int, report
    ) -> CampaignDataset:
        """In-process fallback dataset for a degraded direct collection.

        The store was discarded, but the wire is clean (direct mode only
        runs without transport chaos), so the surviving windows are
        re-synthesized serially through the fast path — the same bytes
        the workers wrote, minus the quarantined windows, matching the
        supervised record path's degraded contract.
        """
        campaign = self.campaign
        quarantined = {msm_id for msm_id, _ in report.quarantined}
        dataset = CampaignDataset(
            campaign.platform.probes, campaign.platform.fleet, obs=campaign.obs
        )
        for index, msm_id, fetch_from in pending:
            if msm_id in quarantined:
                continue
            vm = campaign.platform.fleet[index]
            record = campaign._fetch_measurement(
                campaign.transport, index, msm_id, vm, fetch_from, window_stop
            )
            campaign._merge_record(dataset, record, None, window_stop)
        dataset.freeze()
        report.collected = report.windows - len(quarantined)
        return dataset
