"""The measurement campaign (paper §4.1).

Reproduces the methodology end to end through the Atlas client API:

1. deploy the VM fleet (101 regions, :mod:`repro.cloud.vm`);
2. select vantage points per country (the 3200+ probe population);
3. create one periodic ping measurement per target region, sourced from
   probes *in the same continent*, plus the §4.1 fallbacks: African
   probes also measure European regions, Latin American probes also
   measure North American regions;
4. fetch and parse every result (sagan-style), accumulating a
   :class:`~repro.core.dataset.CampaignDataset`.

Scales: the paper ran 9 months at one ping per 3 hours.  That is
reproducible here (``CampaignScale.FULL``) but takes hours of CPU;
``MEDIUM`` generates a dataset of roughly the published size (~3.2 M
samples), ``SMALL`` preserves every figure's shape in ~20 s, and ``TINY``
is for unit tests.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.atlas.api.client import AtlasCreateRequest
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.api.transport import Transport
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probes import Probe
from repro.atlas.results.base import Result
from repro.atlas.results.ping import PingResult
from repro.constants import CAMPAIGN_START_TS, MEASUREMENT_INTERVAL_S
from repro.core.dataset import CampaignDataset
from repro.errors import (
    CampaignError,
    CollectionInterruptedError,
    ResultParseError,
    TransportError,
)
from repro.geo.continents import adjacent_target_continents
from repro.cloud.vm import TargetVM


class CampaignScale(enum.Enum):
    """Preset campaign sizes.

    ``probe_fraction`` subsamples each country's probes *proportionally*
    (with a floor of one probe per country, so the Figure 4 map keeps
    full coverage).  Proportional — not capped — sampling preserves the
    platform's European density bias, which Figure 5's "~50 % of all
    probes are in EU/NA under 20 ms" framing depends on.
    ``interval_s`` is the ping period; ``duration_days`` the campaign
    length.
    """

    TINY = ("tiny", 0.0, 43_200, 4)
    SMALL = ("small", 0.125, 43_200, 10)
    MEDIUM = ("medium", 0.34, 21_600, 30)
    FULL = ("full", 1.0, MEASUREMENT_INTERVAL_S, 273)

    def __init__(self, label: str, probe_fraction: float, interval_s: int, days: int):
        self.label = label
        self.probe_fraction = probe_fraction
        self.interval_s = interval_s
        self.duration_days = days

    @property
    def duration_s(self) -> int:
        return self.duration_days * 86_400

    def vantage_count(self, country_probes: int) -> int:
        """How many of a country's probes this scale samples (>= 1)."""
        return max(1, int(round(country_probes * self.probe_fraction)))


@dataclass(frozen=True)
class CampaignPlan:
    """Resolved campaign parameters (before execution)."""

    scale: CampaignScale
    start_time: int
    stop_time: int
    vantage_ids_by_continent: Dict[str, Tuple[int, ...]]
    packets: int = 3

    @property
    def total_vantage_points(self) -> int:
        return sum(len(ids) for ids in self.vantage_ids_by_continent.values())


@dataclass
class CollectionCheckpoint:
    """Resumable collection state: per-measurement high-water timestamps.

    ``high_water[msm_id]`` is the timestamp (exclusive) the measurement
    has been fully collected through.  The collector only advances a
    measurement's mark after its whole window landed in the dataset, so
    a checkpoint is always consistent with the samples collected so far
    and a resume never duplicates nor drops samples.
    """

    high_water: Dict[int, int] = field(default_factory=dict)

    def collected_through(self, msm_id: int, default: int) -> int:
        return self.high_water.get(msm_id, default)

    def mark(self, msm_id: int, through: int) -> None:
        current = self.high_water.get(msm_id)
        if current is None or through > current:
            self.high_water[msm_id] = int(through)

    def save(self, path) -> None:
        payload = {str(msm_id): ts for msm_id, ts in self.high_water.items()}
        Path(path).write_text(json.dumps({"high_water": payload}, indent=0))

    @classmethod
    def load(cls, path) -> "CollectionCheckpoint":
        payload = json.loads(Path(path).read_text())
        return cls(
            high_water={
                int(msm_id): int(ts)
                for msm_id, ts in payload.get("high_water", {}).items()
            }
        )


@dataclass
class CollectionStats:
    """What collection had to survive (accumulates across collect calls)."""

    measurements_collected: int = 0
    samples_appended: int = 0
    quarantined: int = 0
    duplicates_dropped: int = 0
    interruptions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "measurements_collected": self.measurements_collected,
            "samples_appended": self.samples_appended,
            "quarantined": self.quarantined,
            "duplicates_dropped": self.duplicates_dropped,
            "interruptions": self.interruptions,
        }


class Campaign:
    """One full measurement campaign against a platform.

    All platform traffic goes through a
    :class:`~repro.atlas.api.transport.Transport` seam; attach one built
    with a fault profile to chaos-test the collection pipeline.
    """

    def __init__(
        self,
        platform: AtlasPlatform,
        scale: CampaignScale = CampaignScale.SMALL,
        start_time: int = CAMPAIGN_START_TS,
        api_key: str = None,
        transport: Transport = None,
    ):
        self.platform = platform
        self.transport = transport if transport is not None else Transport(platform)
        if self.transport.platform is not platform:
            raise CampaignError("transport is bound to a different platform")
        self.scale = scale
        self.start_time = int(start_time)
        self.stop_time = self.start_time + scale.duration_s
        if api_key is None:
            api_key = self._provision_account()
        self.api_key = api_key
        self.plan = self._make_plan()
        self.measurement_ids: List[int] = []
        self._msm_id_by_target: Dict[str, int] = {}
        self.collection_stats = CollectionStats()

    @classmethod
    def from_paper(
        cls,
        scale: CampaignScale = CampaignScale.SMALL,
        seed: int = 0,
        faults=None,
    ) -> "Campaign":
        """Build a campaign with a fresh platform, paper defaults.

        ``faults`` takes a chaos profile name (``"flaky"`` / ``"outage"``
        / ``"hostile"``) or :class:`~repro.atlas.faults.FaultProfile`.
        """
        platform = AtlasPlatform(seed=seed)
        transport = Transport(platform, faults=faults)
        return cls(platform, scale=scale, transport=transport)

    # -- planning --------------------------------------------------------------

    def _provision_account(self) -> str:
        """Register the research account with the raised quota the paper's
        acknowledgements thank the Atlas team for."""
        account = CreditAccount(
            key="REPRO-RESEARCH-KEY",
            balance=1_000_000_000,
            daily_limit=10_000_000,
        )
        self.platform.register_account(account)
        return account.key

    def _make_plan(self) -> CampaignPlan:
        by_continent: Dict[str, List[int]] = {}
        by_country: Dict[str, List[Probe]] = {}
        for probe in self.platform.probes:
            by_country.setdefault(probe.country_code, []).append(probe)
        for country_probes in by_country.values():
            country_probes.sort(key=lambda p: p.probe_id)
            count = self.scale.vantage_count(len(country_probes))
            # Stride through the country's probes instead of taking a
            # prefix, so the subsample stays representative.
            stride = max(1, len(country_probes) // count)
            chosen = country_probes[::stride][:count]
            for probe in chosen:
                by_continent.setdefault(probe.continent, []).append(probe.probe_id)
        return CampaignPlan(
            scale=self.scale,
            start_time=self.start_time,
            stop_time=self.stop_time,
            vantage_ids_by_continent={
                continent: tuple(sorted(ids))
                for continent, ids in by_continent.items()
            },
        )

    def _vantage_ids_for_target(self, vm: TargetVM) -> Tuple[int, ...]:
        """Probe ids measuring this target (same continent + §4.1 fallbacks)."""
        target_continent = vm.region.continent
        ids: List[int] = list(
            self.plan.vantage_ids_by_continent.get(target_continent, ())
        )
        for source_continent, fallbacks in (
            (continent, adjacent_target_continents(continent))
            for continent in self.plan.vantage_ids_by_continent
        ):
            if target_continent in fallbacks:
                ids.extend(self.plan.vantage_ids_by_continent[source_continent])
        return tuple(sorted(set(ids)))

    # -- execution ------------------------------------------------------------

    def create_measurements(self) -> List[int]:
        """Register one periodic ping per target region via the client API.

        Idempotent and resumable: each created target is tracked, so a
        run interrupted mid-loop (e.g. by a
        :class:`~repro.errors.QuotaExceededError`) can simply be retried
        — already-created measurements are skipped, never duplicated,
        and a call with everything created returns the existing ids.
        """
        for vm in self.platform.fleet:
            if vm.key in self._msm_id_by_target:
                continue
            vantage_ids = self._vantage_ids_for_target(vm)
            if not vantage_ids:
                raise CampaignError(
                    f"no vantage points for target {vm.key} "
                    f"({vm.region.continent})"
                )
            ping = Ping(
                target=self.platform.hostname_for(vm),
                description=f"latency-shears {vm.key}",
                interval=self.scale.interval_s,
                packets=self.plan.packets,
            )
            source = AtlasSource(
                type="probes",
                value=",".join(str(pid) for pid in vantage_ids),
                requested=len(vantage_ids),
            )
            ok, response = AtlasCreateRequest(
                measurements=[ping],
                sources=[source],
                start_time=self.start_time,
                stop_time=self.stop_time,
                key=self.api_key,
                transport=self.transport,
            ).create()
            if not ok:
                self._sync_measurement_ids()
                raise CampaignError(
                    f"measurement creation failed for {vm.key}: "
                    f"{response['error']['detail']}"
                )
            self._msm_id_by_target[vm.key] = response["measurements"][0]
        self._sync_measurement_ids()
        return self.measurement_ids

    def _sync_measurement_ids(self) -> None:
        """Rebuild the fleet-ordered id list from the created-target map."""
        self.measurement_ids = [
            self._msm_id_by_target[vm.key]
            for vm in self.platform.fleet
            if vm.key in self._msm_id_by_target
        ]

    def collect(
        self,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
        dataset: CampaignDataset = None,
    ) -> CampaignDataset:
        """Fetch and parse results into a dataset.

        ``start``/``stop`` bound the collection window (Unix seconds),
        supporting the paper's mode of operation — "our measurements are
        ongoing" — where analysis runs on the data gathered so far.
        Omitted bounds default to the campaign's own window.

        Pass the ``checkpoint`` and partial ``dataset`` carried by a
        :class:`~repro.errors.CollectionInterruptedError` to resume an
        interrupted collection without duplicating samples.
        """
        if not self.measurement_ids:
            raise CampaignError("create_measurements() must run first")
        if dataset is None:
            dataset = CampaignDataset(self.platform.probes, self.platform.fleet)
        self.collect_into(dataset, start=start, stop=stop, checkpoint=checkpoint)
        dataset.freeze()
        return dataset

    def collect_into(
        self,
        dataset: CampaignDataset,
        start: int = None,
        stop: int = None,
        checkpoint: CollectionCheckpoint = None,
    ) -> None:
        """Append one collection window into an existing (unfrozen) dataset.

        Without a checkpoint, windows must not overlap across calls or
        samples will duplicate — the platform regenerates results
        deterministically per window.  With one, each measurement's
        high-water mark guards against exactly that: re-collecting an
        already-covered window is a no-op.

        Hardened for chaos collection: each measurement's window is
        fetched through the transport (which retries transient faults),
        duplicated entries are dropped, malformed blobs are quarantined
        and counted instead of crashing, and samples land in the dataset
        only once the whole measurement window arrived — so an
        interruption (raised as
        :class:`~repro.errors.CollectionInterruptedError` with the
        checkpoint and partial dataset attached) never leaves a
        half-collected measurement behind.
        """
        window_start = self.start_time if start is None else int(start)
        window_stop = self.stop_time if stop is None else int(stop)
        stats = self.collection_stats
        for msm_id, vm in zip(self.measurement_ids, self.platform.fleet):
            fetch_from = window_start
            if checkpoint is not None:
                fetch_from = max(
                    window_start, checkpoint.collected_through(msm_id, window_start)
                )
            if fetch_from >= window_stop:
                continue
            try:
                raws = self.transport.results(
                    msm_id, start=fetch_from, stop=window_stop
                )
            except TransportError as exc:
                stats.interruptions += 1
                raise CollectionInterruptedError(
                    f"measurement {msm_id} ({vm.key}): {exc}",
                    checkpoint=checkpoint,
                    dataset=dataset,
                ) from exc
            for parsed in self._clean(raws, msm_id):
                dataset.append(
                    probe_id=parsed.probe_id,
                    target_key=vm.key,
                    timestamp=parsed.created_timestamp,
                    rtt_min=parsed.rtt_min if parsed.succeeded else math.nan,
                    rtt_avg=parsed.rtt_average if parsed.succeeded else math.nan,
                    sent=parsed.packets_sent,
                    rcvd=parsed.packets_received,
                )
                stats.samples_appended += 1
            stats.measurements_collected += 1
            if checkpoint is not None:
                checkpoint.mark(msm_id, window_stop)

    def _clean(self, raws: List, msm_id: int) -> List[PingResult]:
        """Parse a fetched window: dedup on (probe, timestamp), quarantine
        anything malformed.  Returns results in first-seen order, which is
        the platform's canonical probe-major order."""
        stats = self.collection_stats
        cleaned: Dict[Tuple[int, int], PingResult] = {}
        for raw in raws:
            try:
                parsed = Result.get(raw)
            except ResultParseError:
                stats.quarantined += 1
                continue
            if not isinstance(parsed, PingResult):
                stats.quarantined += 1
                continue
            key = (parsed.probe_id, parsed.created_timestamp)
            if key in cleaned:
                stats.duplicates_dropped += 1
                continue
            cleaned[key] = parsed
        return list(cleaned.values())

    def run(self) -> CampaignDataset:
        """Create measurements and collect everything."""
        self.create_measurements()
        return self.collect()

    # -- reporting convenience ---------------------------------------------------

    def headline_report(self, dataset: CampaignDataset):
        """Shortcut to :func:`repro.core.report.headline_report`."""
        from repro.core.report import headline_report

        return headline_report(dataset)
