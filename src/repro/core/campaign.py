"""The measurement campaign (paper §4.1).

Reproduces the methodology end to end through the Atlas client API:

1. deploy the VM fleet (101 regions, :mod:`repro.cloud.vm`);
2. select vantage points per country (the 3200+ probe population);
3. create one periodic ping measurement per target region, sourced from
   probes *in the same continent*, plus the §4.1 fallbacks: African
   probes also measure European regions, Latin American probes also
   measure North American regions;
4. fetch and parse every result (sagan-style), accumulating a
   :class:`~repro.core.dataset.CampaignDataset`.

Scales: the paper ran 9 months at one ping per 3 hours.  That is
reproducible here (``CampaignScale.FULL``) but takes hours of CPU;
``MEDIUM`` generates a dataset of roughly the published size (~3.2 M
samples), ``SMALL`` preserves every figure's shape in ~20 s, and ``TINY``
is for unit tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.atlas.api.client import AtlasCreateRequest
from repro.atlas.api.measurements import Ping
from repro.atlas.api.sources import AtlasSource
from repro.atlas.credits import CreditAccount
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probes import Probe
from repro.atlas.results.base import Result
from repro.atlas.results.ping import PingResult
from repro.constants import CAMPAIGN_START_TS, MEASUREMENT_INTERVAL_S
from repro.core.dataset import CampaignDataset
from repro.errors import CampaignError
from repro.geo.continents import adjacent_target_continents
from repro.cloud.vm import TargetVM


class CampaignScale(enum.Enum):
    """Preset campaign sizes.

    ``probe_fraction`` subsamples each country's probes *proportionally*
    (with a floor of one probe per country, so the Figure 4 map keeps
    full coverage).  Proportional — not capped — sampling preserves the
    platform's European density bias, which Figure 5's "~50 % of all
    probes are in EU/NA under 20 ms" framing depends on.
    ``interval_s`` is the ping period; ``duration_days`` the campaign
    length.
    """

    TINY = ("tiny", 0.0, 43_200, 4)
    SMALL = ("small", 0.125, 43_200, 10)
    MEDIUM = ("medium", 0.34, 21_600, 30)
    FULL = ("full", 1.0, MEASUREMENT_INTERVAL_S, 273)

    def __init__(self, label: str, probe_fraction: float, interval_s: int, days: int):
        self.label = label
        self.probe_fraction = probe_fraction
        self.interval_s = interval_s
        self.duration_days = days

    @property
    def duration_s(self) -> int:
        return self.duration_days * 86_400

    def vantage_count(self, country_probes: int) -> int:
        """How many of a country's probes this scale samples (>= 1)."""
        return max(1, int(round(country_probes * self.probe_fraction)))


@dataclass(frozen=True)
class CampaignPlan:
    """Resolved campaign parameters (before execution)."""

    scale: CampaignScale
    start_time: int
    stop_time: int
    vantage_ids_by_continent: Dict[str, Tuple[int, ...]]
    packets: int = 3

    @property
    def total_vantage_points(self) -> int:
        return sum(len(ids) for ids in self.vantage_ids_by_continent.values())


class Campaign:
    """One full measurement campaign against a platform."""

    def __init__(
        self,
        platform: AtlasPlatform,
        scale: CampaignScale = CampaignScale.SMALL,
        start_time: int = CAMPAIGN_START_TS,
        api_key: str = None,
    ):
        self.platform = platform
        self.scale = scale
        self.start_time = int(start_time)
        self.stop_time = self.start_time + scale.duration_s
        if api_key is None:
            api_key = self._provision_account()
        self.api_key = api_key
        self.plan = self._make_plan()
        self.measurement_ids: List[int] = []

    @classmethod
    def from_paper(
        cls, scale: CampaignScale = CampaignScale.SMALL, seed: int = 0
    ) -> "Campaign":
        """Build a campaign with a fresh platform, paper defaults."""
        return cls(AtlasPlatform(seed=seed), scale=scale)

    # -- planning --------------------------------------------------------------

    def _provision_account(self) -> str:
        """Register the research account with the raised quota the paper's
        acknowledgements thank the Atlas team for."""
        account = CreditAccount(
            key="REPRO-RESEARCH-KEY",
            balance=1_000_000_000,
            daily_limit=10_000_000,
        )
        self.platform.register_account(account)
        return account.key

    def _make_plan(self) -> CampaignPlan:
        by_continent: Dict[str, List[int]] = {}
        by_country: Dict[str, List[Probe]] = {}
        for probe in self.platform.probes:
            by_country.setdefault(probe.country_code, []).append(probe)
        for country_probes in by_country.values():
            country_probes.sort(key=lambda p: p.probe_id)
            count = self.scale.vantage_count(len(country_probes))
            # Stride through the country's probes instead of taking a
            # prefix, so the subsample stays representative.
            stride = max(1, len(country_probes) // count)
            chosen = country_probes[::stride][:count]
            for probe in chosen:
                by_continent.setdefault(probe.continent, []).append(probe.probe_id)
        return CampaignPlan(
            scale=self.scale,
            start_time=self.start_time,
            stop_time=self.stop_time,
            vantage_ids_by_continent={
                continent: tuple(sorted(ids))
                for continent, ids in by_continent.items()
            },
        )

    def _vantage_ids_for_target(self, vm: TargetVM) -> Tuple[int, ...]:
        """Probe ids measuring this target (same continent + §4.1 fallbacks)."""
        target_continent = vm.region.continent
        ids: List[int] = list(
            self.plan.vantage_ids_by_continent.get(target_continent, ())
        )
        for source_continent, fallbacks in (
            (continent, adjacent_target_continents(continent))
            for continent in self.plan.vantage_ids_by_continent
        ):
            if target_continent in fallbacks:
                ids.extend(self.plan.vantage_ids_by_continent[source_continent])
        return tuple(sorted(set(ids)))

    # -- execution ------------------------------------------------------------

    def create_measurements(self) -> List[int]:
        """Register one periodic ping per target region via the client API."""
        if self.measurement_ids:
            raise CampaignError("measurements already created")
        for vm in self.platform.fleet:
            vantage_ids = self._vantage_ids_for_target(vm)
            if not vantage_ids:
                raise CampaignError(
                    f"no vantage points for target {vm.key} "
                    f"({vm.region.continent})"
                )
            ping = Ping(
                target=self.platform.hostname_for(vm),
                description=f"latency-shears {vm.key}",
                interval=self.scale.interval_s,
                packets=self.plan.packets,
            )
            source = AtlasSource(
                type="probes",
                value=",".join(str(pid) for pid in vantage_ids),
                requested=len(vantage_ids),
            )
            ok, response = AtlasCreateRequest(
                measurements=[ping],
                sources=[source],
                start_time=self.start_time,
                stop_time=self.stop_time,
                key=self.api_key,
                platform=self.platform,
            ).create()
            if not ok:
                raise CampaignError(
                    f"measurement creation failed for {vm.key}: "
                    f"{response['error']['detail']}"
                )
            self.measurement_ids.extend(response["measurements"])
        return self.measurement_ids

    def collect(self, start: int = None, stop: int = None) -> CampaignDataset:
        """Fetch and parse results into a dataset.

        ``start``/``stop`` bound the collection window (Unix seconds),
        supporting the paper's mode of operation — "our measurements are
        ongoing" — where analysis runs on the data gathered so far.
        Omitted bounds default to the campaign's own window.
        """
        if not self.measurement_ids:
            raise CampaignError("create_measurements() must run first")
        dataset = CampaignDataset(self.platform.probes, self.platform.fleet)
        self.collect_into(dataset, start=start, stop=stop)
        dataset.freeze()
        return dataset

    def collect_into(
        self, dataset: CampaignDataset, start: int = None, stop: int = None
    ) -> None:
        """Append one collection window into an existing (unfrozen) dataset.

        Windows must not overlap across calls or samples will duplicate —
        the platform regenerates results deterministically per window.
        """
        for msm_id, vm in zip(self.measurement_ids, self.platform.fleet):
            for raw in self.platform.iter_results(msm_id, start=start, stop=stop):
                parsed = Result.get(raw)
                if not isinstance(parsed, PingResult):
                    raise CampaignError(
                        f"unexpected result type from msm {msm_id}"
                    )  # pragma: no cover
                dataset.append(
                    probe_id=parsed.probe_id,
                    target_key=vm.key,
                    timestamp=parsed.created_timestamp,
                    rtt_min=parsed.rtt_min if parsed.succeeded else math.nan,
                    rtt_avg=parsed.rtt_average if parsed.succeeded else math.nan,
                    sent=parsed.packets_sent,
                    rcvd=parsed.packets_received,
                )

    def run(self) -> CampaignDataset:
        """Create measurements and collect everything."""
        self.create_measurements()
        return self.collect()

    # -- reporting convenience ---------------------------------------------------

    def headline_report(self, dataset: CampaignDataset):
        """Shortcut to :func:`repro.core.report.headline_report`."""
        from repro.core.report import headline_report

        return headline_report(dataset)
