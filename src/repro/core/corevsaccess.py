"""Core vs last-mile latency (paper §4, historical argument).

When edge computing was conceived (~2009), the *core* network was the
latency bottleneck; a decade of backbone build-out inverted that, and the
paper's premise is that today the *last mile* dominates.  This analysis
makes the comparison explicit using two instruments the platform offers:

* the **anchor mesh** — wired, datacenter-grade endpoints: core-only RTT;
* **home probes to the same destinations** — core plus a last mile.

For a set of (country, datacenter-country) pairs, the difference between
a home probe's cloud RTT and the anchor mesh RTT along the same country
pair estimates the last-mile cost; comparing it against the core RTT
itself answers "where is the delay?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.atlas.anchors import country_pair_median
from repro.atlas.platform import AtlasPlatform
from repro.atlas.probes import Probe, ProbeEnvironment
from repro.errors import AtlasError, CampaignError
from repro.frame import Frame
from repro.net.rng import stream


@dataclass(frozen=True)
class CorePair:
    """Core-vs-access decomposition for one country pair."""

    source_country: str
    target_country: str
    core_ms: float
    wired_access_ms: float
    wireless_access_ms: float

    @property
    def wired_bottleneck(self) -> str:
        return "access" if self.wired_access_ms > self.core_ms else "core"

    @property
    def wireless_bottleneck(self) -> str:
        return "access" if self.wireless_access_ms > self.core_ms else "core"


def _home_probes(
    platform: AtlasPlatform, country: str, wireless: bool, limit: int = 6
) -> Tuple[Probe, ...]:
    chosen = [
        probe
        for probe in platform.probes
        if probe.country_code == country.upper()
        and probe.environment is ProbeEnvironment.HOME
        and probe.access.is_wireless == wireless
    ]
    return tuple(chosen[:limit])


def _probe_cloud_median(
    platform: AtlasPlatform,
    probes: Sequence[Probe],
    target_country: str,
    timestamps: Sequence[int],
) -> float:
    """Median RTT from home probes to a datacenter in ``target_country``."""
    vms = [
        vm for vm in platform.fleet if vm.region.country_code == target_country.upper()
    ]
    if not vms:
        raise CampaignError(f"no datacenter in {target_country}")
    vm = vms[0]
    values: List[float] = []
    for probe in probes:
        rng = stream(platform.seed, "cva", probe.probe_id, vm.key)
        for timestamp in timestamps:
            obs = platform.model.ping(
                probe.location,
                probe.country,
                probe.access,
                vm.region.location,
                vm.region.country,
                timestamp,
                origin_id=probe.probe_id,
                target_id=vm.key,
                adjustment=vm.adjustment,
                rng=rng,
            )
            if obs.succeeded:
                values.append(obs.rtt_min)
    if not values:
        raise CampaignError("no successful probe pings for the pair")
    return float(np.median(values))


def decompose_pair(
    platform: AtlasPlatform,
    source_country: str,
    target_country: str,
    timestamps: Sequence[int],
) -> CorePair:
    """Core vs access decomposition for one (source, DC-country) pair."""
    core = country_pair_median(platform, source_country, target_country, timestamps)
    wired = _home_probes(platform, source_country, wireless=False)
    wireless = _home_probes(platform, source_country, wireless=True)
    if not wired:
        raise AtlasError(f"no wired home probes in {source_country}")
    wired_total = _probe_cloud_median(platform, wired, target_country, timestamps)
    if wireless:
        wireless_total = _probe_cloud_median(
            platform, wireless, target_country, timestamps
        )
    else:
        wireless_total = float("nan")
    return CorePair(
        source_country=source_country.upper(),
        target_country=target_country.upper(),
        core_ms=core,
        wired_access_ms=max(wired_total - core, 0.0),
        wireless_access_ms=(
            max(wireless_total - core, 0.0)
            if not np.isnan(wireless_total)
            else float("nan")
        ),
    )


def survey(
    platform: AtlasPlatform,
    pairs: Sequence[Tuple[str, str]],
    timestamps: Sequence[int],
) -> Frame:
    """Decompose several country pairs into a Frame."""
    records = []
    for source, target in pairs:
        pair = decompose_pair(platform, source, target, timestamps)
        records.append(
            {
                "src": pair.source_country,
                "dst": pair.target_country,
                "core_ms": round(pair.core_ms, 2),
                "wired_access_ms": round(pair.wired_access_ms, 2),
                "wireless_access_ms": (
                    round(pair.wireless_access_ms, 2)
                    if not np.isnan(pair.wireless_access_ms)
                    else float("nan")
                ),
                "wireless_bottleneck": pair.wireless_bottleneck,
            }
        )
    return Frame.from_records(
        records,
        columns=[
            "src", "dst", "core_ms", "wired_access_ms",
            "wireless_access_ms", "wireless_bottleneck",
        ],
    )
