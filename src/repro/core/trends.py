"""Era analysis of the edge/cloud zeitgeist (paper §2, Figure 1).

Collects the two Figure 1 series — publications via the Scholar-style
crawler, search interest via the Trends substrate — and derives the three
eras the paper narrates: CDN, Cloud, and Edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ReproError
from repro.frame import Frame
from repro.scholar.corpus import FIRST_YEAR, LAST_YEAR
from repro.scholar.crawler import ScholarCrawler
from repro.scholar.trends import normalized_series, yearly_average

#: The two keywords Figure 1 compares.
FIGURE1_KEYWORDS: Tuple[str, str] = ("cloud computing", "edge computing")


@dataclass(frozen=True)
class EraBoundaries:
    """Transition years between the three eras of §2."""

    cdn_until: int
    cloud_from: int
    edge_from: int

    def era_of(self, year: int) -> str:
        if year < self.cloud_from:
            return "CDN"
        if year < self.edge_from:
            return "Cloud"
        return "Edge"


def collect_figure1(
    crawler: ScholarCrawler = None,
    keywords: Sequence[str] = FIGURE1_KEYWORDS,
    first: int = FIRST_YEAR,
    last: int = LAST_YEAR,
    seed: int = 0,
) -> Frame:
    """The full Figure 1 data: per keyword per year, publications and
    (jointly normalized) search interest."""
    crawler = crawler if crawler is not None else ScholarCrawler(seed=seed)
    interest = {
        keyword: yearly_average(series)
        for keyword, series in normalized_series(keywords, first, last, seed).items()
    }
    records = []
    for keyword in keywords:
        publications = crawler.yearly_counts(keyword, first, last)
        for year in range(first, last + 1):
            records.append(
                {
                    "keyword": keyword,
                    "year": year,
                    "publications": publications[year],
                    "search_interest": round(interest[keyword].get(year, 0.0), 2),
                }
            )
    return Frame.from_records(
        records, columns=["keyword", "year", "publications", "search_interest"]
    )


def detect_eras(figure1: Frame) -> EraBoundaries:
    """Derive the CDN/Cloud/Edge era transitions from the Figure 1 data.

    * the Cloud era starts the first year "cloud computing" search
      interest exceeds 10 % of its own peak;
    * the Edge era starts the first year "edge computing" publications
      exceed 10 % of cloud's concurrent volume.
    """
    cloud = figure1.filter(figure1["keyword"] == "cloud computing")
    edge = figure1.filter(figure1["keyword"] == "edge computing")
    if cloud.is_empty() or edge.is_empty():
        raise ReproError("figure1 frame must contain both keywords")

    cloud_interest = cloud["search_interest"]
    cloud_years = cloud["year"]
    peak = float(cloud_interest.max())
    cloud_from = None
    for year, value in zip(cloud_years, cloud_interest):
        if value > 0.10 * peak:
            cloud_from = int(year)
            break
    if cloud_from is None:
        raise ReproError("cloud era never starts in this window")

    cloud_pubs = {int(y): float(p) for y, p in zip(cloud_years, cloud["publications"])}
    edge_from = None
    for year, pubs in zip(edge["year"], edge["publications"]):
        year = int(year)
        reference = cloud_pubs.get(year, 0.0)
        if reference > 0 and float(pubs) > 0.10 * reference:
            edge_from = year
            break
    if edge_from is None:
        raise ReproError("edge era never starts in this window")
    if edge_from <= cloud_from:
        raise ReproError(
            f"era ordering violated: edge {edge_from} <= cloud {cloud_from}"
        )
    return EraBoundaries(
        cdn_until=cloud_from - 1, cloud_from=cloud_from, edge_from=edge_from
    )


def growth_summary(figure1: Frame) -> Dict[str, float]:
    """Headline dynamics: cloud peak year, edge growth multiple, crossover."""
    out: Dict[str, float] = {}
    for keyword in FIGURE1_KEYWORDS:
        sub = figure1.filter(figure1["keyword"] == keyword)
        interest = sub["search_interest"]
        years = sub["year"]
        peak_index = int(max(range(len(interest)), key=lambda i: interest[i]))
        out[f"{keyword.split()[0]}_interest_peak_year"] = int(years[peak_index])
        pubs = sub["publications"]
        first_nonzero = next(
            (float(p) for p in pubs if p > 0), 0.0
        )
        out[f"{keyword.split()[0]}_pub_growth"] = (
            float(pubs[-1]) / first_nonzero if first_nonzero else float("inf")
        )
    return out
