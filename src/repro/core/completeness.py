"""Dataset completeness: probe churn accounting.

Nine months of measurements never arrive complete — probes go offline,
reboot, or vanish.  The paper notes its results "include probes without a
stable Internet connection".  This analysis reconciles the dataset
against the platform's schedule: per probe, how many results were
expected (online ticks), how many arrived, and which cohorts flake.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.campaign import Campaign
from repro.core.dataset import CampaignDataset
from repro.errors import CampaignError
from repro.frame import Frame


def completeness_frame(campaign: Campaign, dataset: CampaignDataset) -> Frame:
    """Per-probe delivery accounting over the whole campaign."""
    if not campaign.measurement_ids:
        raise CampaignError("campaign has no measurements")
    platform = campaign.platform

    delivered: Dict[int, int] = {}
    probe_ids = dataset.column("probe_id")
    for probe_id, count in zip(*np.unique(probe_ids, return_counts=True)):
        delivered[int(probe_id)] = int(count)

    expected: Dict[int, int] = {}
    scheduled: Dict[int, int] = {}
    for msm_id in campaign.measurement_ids:
        msm = platform.measurement(msm_id)
        for probe in msm.probes:
            expected[probe.probe_id] = expected.get(
                probe.probe_id, 0
            ) + platform.expected_result_count(msm_id, probe.probe_id)
            scheduled[probe.probe_id] = scheduled.get(
                probe.probe_id, 0
            ) + platform.scheduled_tick_count(msm_id, probe.probe_id)

    records = []
    for probe_id in sorted(expected):
        probe = platform.probe(probe_id)
        exp = expected[probe_id]
        got = delivered.get(probe_id, 0)
        records.append(
            {
                "probe_id": probe_id,
                "country": probe.country_code,
                "wireless": probe.access.is_wireless,
                "stability": round(probe.stability, 4),
                "scheduled": scheduled[probe_id],
                "expected": exp,
                "delivered": got,
                "completeness": round(got / exp, 4) if exp else 0.0,
                "uptime": round(exp / scheduled[probe_id], 4)
                if scheduled[probe_id]
                else 0.0,
            }
        )
    return Frame.from_records(
        records,
        columns=[
            "probe_id", "country", "wireless", "stability",
            "scheduled", "expected", "delivered", "completeness", "uptime",
        ],
    )


def fleet_summary(frame: Frame, stats=None) -> Dict[str, float]:
    """Aggregate completeness statistics.

    Pass a campaign's :class:`~repro.core.campaign.CollectionStats` to
    fold in what the *collector* had to absorb — quarantined malformed
    blobs and dropped duplicate results are missing-data causes on the
    client side of the API, exactly like probe churn is on the probe
    side, so this report is where they surface.
    """
    delivered = float(np.sum(frame["delivered"]))
    expected = float(np.sum(frame["expected"]))
    scheduled = float(np.sum(frame["scheduled"]))
    wireless_mask = frame["wireless"].astype(bool)
    uptimes = frame["uptime"].astype(float)
    summary = {
        "probes": len(frame),
        "delivery_rate": delivered / expected if expected else 0.0,
        "uptime_rate": expected / scheduled if scheduled else 0.0,
        "wired_uptime": float(np.mean(uptimes[~wireless_mask])),
        "wireless_uptime": float(np.mean(uptimes[wireless_mask]))
        if np.any(wireless_mask)
        else float("nan"),
    }
    if stats is not None:
        summary["quarantined"] = float(stats.quarantined)
        summary["duplicates_dropped"] = float(stats.duplicates_dropped)
        summary["interruptions"] = float(stats.interruptions)
        summary["quarantine_share"] = (
            stats.quarantined / (delivered + stats.quarantined)
            if delivered + stats.quarantined
            else 0.0
        )
    return summary


def collection_health(campaign) -> Dict[str, object]:
    """One-stop health report: collector stats + transport fault/retry
    accounting, for chaos benchmarks and the CLI.  Uses the campaign's
    aggregated view so parallel-collection worker transports are folded
    in alongside the main transport."""
    return {
        **campaign.collection_stats.as_dict(),
        "transport": campaign.transport_stats(),
    }


def health_report(
    campaign: Campaign, dataset: CampaignDataset = None
) -> Dict[str, object]:
    """The full campaign health picture, JSON-serializable.

    Combines :func:`collection_health` (collector + transport
    accounting), a :func:`fleet_summary` over the delivered dataset when
    one is given, and — for an instrumented campaign — the metrics
    snapshot of its observability context.  Backs ``repro report
    --health`` and ``repro obs report``.
    """
    report: Dict[str, object] = {"collection": collection_health(campaign)}
    # A dataset served from the persistent store (cache hit or
    # --from-store) arrives without live measurements to reconcile
    # against, so per-probe delivery accounting is undefined for it.
    if dataset is not None and campaign.measurement_ids:
        report["fleet"] = fleet_summary(
            completeness_frame(campaign, dataset), stats=campaign.collection_stats
        )
    supervision = getattr(campaign, "supervision", None)
    if supervision is not None:
        # A supervised collection's casualty report: crashes, hangs,
        # respawns, and any quarantined windows (degraded coverage).
        report["supervision"] = supervision.as_dict()
    if campaign.obs.enabled:
        report["metrics"] = campaign.obs.registry.snapshot()
    return report
