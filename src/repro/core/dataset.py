"""The collected measurement dataset.

A campaign produces millions of ping samples; holding them as dicts would
not scale, so :class:`CampaignDataset` stores them in compact numpy
columns keyed by integer probe ids and target indices, with small metadata
tables (probes, targets) carrying everything the analyses join against.

The paper published its raw dataset "for public use" [18];
:meth:`CampaignDataset.export_csv` / :meth:`load_csv` reproduce that
artifact for the synthetic equivalent.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.atlas.probes import Probe
from repro.atlas.tags import classify_lastmile, is_privileged
from repro.cloud.vm import TargetVM
from repro.errors import CampaignError
from repro.frame import Frame, read_csv, write_csv
from repro.obs import ensure_obs

#: Sample columns and their storage dtypes, in canonical order.
SAMPLE_DTYPES: Tuple[Tuple[str, type], ...] = (
    ("probe_id", np.int32),
    ("target_index", np.int32),
    ("timestamp", np.int64),
    ("rtt_min", np.float64),
    ("rtt_avg", np.float64),
    ("sent", np.int16),
    ("rcvd", np.int16),
)


class _SampleBuffer:
    """Append-only sample columns on pre-allocated numpy storage.

    Columns live in their final dtypes from the first append; capacity
    grows geometrically (doubling), so a campaign's millions of rows cost
    O(log n) reallocations instead of one Python-list node per value, and
    bulk extends are single slice assignments.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, obs=None) -> None:
        self.size = 0
        self._capacity = 0
        self.obs = ensure_obs(obs)
        self._columns: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in SAMPLE_DTYPES
        }

    def reserve(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more rows."""
        needed = self.size + extra
        if needed <= self._capacity:
            return
        capacity = max(self._INITIAL_CAPACITY, self._capacity)
        while capacity < needed:
            capacity *= 2
        for name in self._columns:
            grown = np.empty(capacity, dtype=self._columns[name].dtype)
            grown[: self.size] = self._columns[name][: self.size]
            self._columns[name] = grown
        self._capacity = capacity
        self.obs.inc("dataset_buffer_reallocs_total")
        self.obs.set_gauge("dataset_buffer_capacity_rows", capacity)

    def append_row(
        self,
        probe_id: int,
        target_index: int,
        timestamp: int,
        rtt_min: float,
        rtt_avg: float,
        sent: int,
        rcvd: int,
    ) -> None:
        self.reserve(1)
        row = self.size
        columns = self._columns
        columns["probe_id"][row] = probe_id
        columns["target_index"][row] = target_index
        columns["timestamp"][row] = timestamp
        columns["rtt_min"][row] = rtt_min
        columns["rtt_avg"][row] = rtt_avg
        columns["sent"][row] = sent
        columns["rcvd"][row] = rcvd
        self.size = row + 1

    def extend(
        self,
        probe_id,
        target_index,
        timestamp,
        rtt_min,
        rtt_avg,
        sent,
        rcvd,
    ) -> None:
        """Bulk-append parallel columns via one slice assignment each."""
        count = len(probe_id)
        if not count:
            return
        self.reserve(count)
        start, stop = self.size, self.size + count
        columns = self._columns
        columns["probe_id"][start:stop] = probe_id
        columns["target_index"][start:stop] = target_index
        columns["timestamp"][start:stop] = timestamp
        columns["rtt_min"][start:stop] = rtt_min
        columns["rtt_avg"][start:stop] = rtt_avg
        columns["sent"][start:stop] = sent
        columns["rcvd"][start:stop] = rcvd
        self.size = stop

    def finalize(self) -> Dict[str, np.ndarray]:
        """Right-sized copies of the filled prefix, ready to freeze."""
        return {
            name: self._columns[name][: self.size].copy() for name in self._columns
        }


class CampaignDataset:
    """Samples plus the probe/target metadata needed to analyze them."""

    def __init__(
        self,
        probes: Sequence[Probe],
        targets: Sequence[TargetVM],
        dedup: bool = False,
        obs=None,
    ):
        if not probes:
            raise CampaignError("dataset needs at least one probe")
        if not targets:
            raise CampaignError("dataset needs at least one target")
        self.obs = ensure_obs(obs)
        self.probes: Tuple[Probe, ...] = tuple(probes)
        self.targets: Tuple[TargetVM, ...] = tuple(targets)
        self._probe_by_id: Dict[int, Probe] = {
            probe.probe_id: probe for probe in self.probes
        }
        self._target_index: Dict[str, int] = {
            vm.key: index for index, vm in enumerate(self.targets)
        }
        self._buffer = _SampleBuffer(obs=self.obs)
        self._frozen: Dict[str, np.ndarray] = {}
        #: Memoized derived columns (probe lookups, masks), computed on
        #: the frozen columns only and dropped at the freeze transition —
        #: appends after freeze raise, so a cached vector can never go
        #: stale.
        self._derived: Dict[str, np.ndarray] = {}
        #: With ``dedup=True`` a re-appended (probe, target, timestamp)
        #: key is silently dropped and counted — the guard resilient
        #: collection relies on when windows might overlap.
        self._dedup_keys = set() if dedup else None
        self.duplicates_dropped = 0

    # -- building ------------------------------------------------------------

    def target_index_of(self, key: str) -> int:
        try:
            return self._target_index[key]
        except KeyError:
            raise CampaignError(f"unknown target {key!r}") from None

    def probe(self, probe_id: int) -> Probe:
        try:
            return self._probe_by_id[probe_id]
        except KeyError:
            raise CampaignError(f"unknown probe {probe_id}") from None

    def append(
        self,
        probe_id: int,
        target_key: str,
        timestamp: int,
        rtt_min: float,
        rtt_avg: float,
        sent: int,
        rcvd: int,
    ) -> None:
        """Append one sample.  Failed pings carry NaN RTTs."""
        if self._frozen:
            raise CampaignError("dataset is frozen; no further appends")
        target_index = self.target_index_of(target_key)
        if self._dedup_keys is not None:
            key = (probe_id, target_index, timestamp)
            if key in self._dedup_keys:
                self.duplicates_dropped += 1
                self.obs.inc("dataset_duplicates_dropped_total")
                return
            self._dedup_keys.add(key)
        self._buffer.append_row(
            probe_id, target_index, timestamp, rtt_min, rtt_avg, sent, rcvd
        )
        self.obs.inc("dataset_samples_appended_total")

    def extend_samples(
        self,
        target_key: str,
        probe_ids: Sequence[int],
        timestamps: Sequence[int],
        rtt_min: Sequence[float],
        rtt_avg: Sequence[float],
        sent: Sequence[int],
        rcvd: Sequence[int],
    ) -> int:
        """Merge-append one measurement's sample columns in bulk.

        The shard-buffer path of the parallel collector: a worker returns
        a whole measurement window as parallel column lists sharing one
        target, and this appends them with a single target lookup instead
        of per-sample :meth:`append` calls.  Row order is preserved, the
        dedup guard (when enabled) is applied row by row exactly as
        :meth:`append` would, and the number of rows actually appended is
        returned.
        """
        if self._frozen:
            raise CampaignError("dataset is frozen; no further appends")
        count = len(probe_ids)
        for name, column in (
            ("timestamps", timestamps), ("rtt_min", rtt_min),
            ("rtt_avg", rtt_avg), ("sent", sent), ("rcvd", rcvd),
        ):
            if len(column) != count:
                raise CampaignError(
                    f"column {name} has {len(column)} rows, expected {count}"
                )
        target_index = self.target_index_of(target_key)
        buffer = self._buffer
        if self._dedup_keys is not None:
            kept = []
            for row in range(count):
                key = (int(probe_ids[row]), target_index, int(timestamps[row]))
                if key in self._dedup_keys:
                    self.duplicates_dropped += 1
                    continue
                self._dedup_keys.add(key)
                kept.append(row)
            dropped = count - len(kept)
            if dropped:
                self.obs.inc("dataset_duplicates_dropped_total", dropped)
            if not kept:
                return 0
            if len(kept) < count:
                rows = np.asarray(kept, dtype=np.intp)
                buffer.extend(
                    np.asarray(probe_ids)[rows],
                    np.full(len(rows), target_index, dtype=np.int32),
                    np.asarray(timestamps)[rows],
                    np.asarray(rtt_min)[rows],
                    np.asarray(rtt_avg)[rows],
                    np.asarray(sent)[rows],
                    np.asarray(rcvd)[rows],
                )
                self.obs.inc("dataset_samples_appended_total", len(kept))
                return len(kept)
        buffer.extend(
            probe_ids,
            np.full(count, target_index, dtype=np.int32),
            timestamps,
            rtt_min,
            rtt_avg,
            sent,
            rcvd,
        )
        self.obs.inc("dataset_samples_appended_total", count)
        return count

    def freeze(self) -> None:
        """Convert buffers to immutable numpy columns."""
        if self._frozen:
            return
        self._derived.clear()
        self._frozen = self._buffer.finalize()
        self._buffer = _SampleBuffer(obs=self.obs)
        rows = len(self._frozen["probe_id"])
        self.obs.set_gauge("dataset_frozen_rows", rows)
        self.obs.event("dataset.freeze", rows=rows)

    # -- access ---------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        self.freeze()
        try:
            return self._frozen[name]
        except KeyError:
            raise CampaignError(f"no sample column {name!r}") from None

    @property
    def num_samples(self) -> int:
        self.freeze()
        return len(self._frozen["probe_id"])

    def __len__(self) -> int:
        return self.num_samples

    # -- derived per-probe vectors (aligned with samples) ----------------------

    def _memoized(self, key: str, compute) -> np.ndarray:
        """Cache a derived sample-aligned vector under ``key``.

        Derived vectors are pure functions of the frozen columns and the
        immutable probe/target tables, so once computed they are reused
        for the dataset's lifetime (appends after freeze raise, and the
        freeze transition clears the cache).  Analyses re-derive these
        vectors dozens of times over millions of rows — memoizing them
        removes the repeated lookup cost outright.
        """
        cached = self._derived.get(key)
        if cached is None:
            self.freeze()
            cached = self._derived[key] = compute()
        return cached

    def _probe_lookup(self, key: str, fn) -> np.ndarray:
        """Memoized vector of ``fn(probe)`` aligned with the sample rows.

        Vectorized via a sorted-id lookup table: millions of samples map
        onto a few thousand probes.
        """

        def compute() -> np.ndarray:
            sorted_ids = np.asarray(sorted(self._probe_by_id), dtype=np.int64)
            table = np.asarray([fn(self._probe_by_id[pid]) for pid in sorted_ids])
            ids = self.column("probe_id")
            positions = np.searchsorted(sorted_ids, ids)
            return table[positions]

        return self._memoized(key, compute)

    def probe_continents(self) -> np.ndarray:
        return self._probe_lookup("probe_continent", lambda probe: probe.continent)

    def probe_countries(self) -> np.ndarray:
        return self._probe_lookup("probe_country", lambda probe: probe.country_code)

    def probe_privileged(self) -> np.ndarray:
        """Privileged flag as the *analysis* sees it: from tags only."""
        return self._probe_lookup(
            "probe_privileged", lambda probe: is_privileged(probe.tags)
        )

    def probe_cohorts(self) -> np.ndarray:
        """wired / wireless / ambiguous / untagged, from tags only."""
        return self._probe_lookup(
            "probe_cohort", lambda probe: classify_lastmile(probe.tags)
        )

    def target_continents(self) -> np.ndarray:
        return self._memoized(
            "target_continent",
            lambda: np.asarray([vm.region.continent for vm in self.targets])[
                self.column("target_index")
            ],
        )

    def target_providers(self) -> np.ndarray:
        return self._memoized(
            "target_provider",
            lambda: np.asarray([vm.region.provider_slug for vm in self.targets])[
                self.column("target_index")
            ],
        )

    def succeeded_mask(self) -> np.ndarray:
        return self._memoized("succeeded", lambda: self.column("rcvd") > 0)

    # -- Frame views --------------------------------------------------------------

    def to_frame(self, mask: np.ndarray = None) -> Frame:
        """Materialize (a subset of) the samples as an analysis Frame."""
        self.freeze()
        columns = {
            "probe_id": self.column("probe_id"),
            "country": self.probe_countries(),
            "continent": self.probe_continents(),
            "cohort": self.probe_cohorts(),
            "privileged": self.probe_privileged(),
            "target": np.asarray([vm.key for vm in self.targets])[
                self.column("target_index")
            ],
            "provider": self.target_providers(),
            "target_continent": self.target_continents(),
            "timestamp": self.column("timestamp"),
            "rtt_min": self.column("rtt_min"),
            "rtt_avg": self.column("rtt_avg"),
            "sent": self.column("sent"),
            "rcvd": self.column("rcvd"),
        }
        frame = Frame(columns)
        if mask is not None:
            frame = frame.filter(mask)
        return frame

    # -- integrity / summary --------------------------------------------------------

    def integrity_report(self) -> Dict[str, float]:
        """Dataset-level sanity statistics."""
        self.freeze()
        rcvd = self.column("rcvd")
        sent = self.column("sent")
        rtt = self.column("rtt_min")
        ok = rcvd > 0
        return {
            "samples": int(len(rcvd)),
            "failed_share": float(np.mean(~ok)) if len(rcvd) else 0.0,
            "loss_share": float(1.0 - rcvd.sum() / sent.sum()) if sent.sum() else 0.0,
            "probes_seen": int(len(np.unique(self.column("probe_id")))),
            "targets_seen": int(len(np.unique(self.column("target_index")))),
            "rtt_min_overall": float(np.nanmin(rtt)) if len(rtt) else float("nan"),
        }

    # -- persistent store ------------------------------------------------------------

    def save(self, path, provenance: Dict[str, object] = None):
        """Persist the frozen dataset as a columnar store directory.

        Checksummed little-endian column chunks plus a JSON manifest,
        written atomically; see :mod:`repro.store`.  ``provenance``
        (seed, fault profile, scale, schedule) is recorded in the
        manifest so :meth:`open` can rebuild the probe/target tables
        without being handed them.  Returns the store manifest.
        """
        from repro.store import write_dataset

        return write_dataset(self, path, provenance=provenance, obs=self.obs)

    @classmethod
    def open(
        cls,
        path,
        probes: Sequence[Probe] = None,
        targets: Sequence[TargetVM] = None,
        verify: str = "full",
        obs=None,
    ) -> "CampaignDataset":
        """Re-open a saved store as a frozen dataset (zero-copy mmap).

        Chunk checksums are verified on open (``verify="full"`` by
        default; ``"sampled"`` size-checks everything and hashes a
        deterministic subset); damaged stores raise
        :class:`~repro.errors.StoreIntegrityError` instead of returning
        data.  Probe/target metadata defaults to regeneration from the
        store's provenance seed.
        """
        from repro.store import open_dataset

        return open_dataset(
            path, probes=probes, targets=targets, verify=verify, obs=obs
        )

    @classmethod
    def from_columns(
        cls,
        probes: Sequence[Probe],
        targets: Sequence[TargetVM],
        columns: Dict[str, np.ndarray],
        obs=None,
    ) -> "CampaignDataset":
        """Build an already-frozen dataset directly from sample columns.

        The store reader's rebuild path: columns arrive as (possibly
        memmap-backed) arrays and are adopted without copying when their
        dtype already matches the schema.  The memoized derived-vector
        machinery works unchanged — it only ever reads the frozen
        columns.
        """
        dataset = cls(probes, targets, obs=obs)
        frozen: Dict[str, np.ndarray] = {}
        length = None
        for name, dtype in SAMPLE_DTYPES:
            try:
                array = columns[name]
            except KeyError:
                raise CampaignError(f"missing sample column {name!r}") from None
            array = np.asarray(array)
            if array.dtype != np.dtype(dtype):
                array = array.astype(dtype)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise CampaignError(
                    f"ragged sample columns: {name!r} has {len(array)} rows, "
                    f"expected {length}"
                )
            frozen[name] = array
        if length and frozen["target_index"].size:
            worst = int(frozen["target_index"].max())
            if worst >= len(dataset.targets) or int(frozen["target_index"].min()) < 0:
                raise CampaignError(
                    f"target_index {worst} out of range for "
                    f"{len(dataset.targets)} targets"
                )
        dataset._frozen = frozen
        dataset.obs.set_gauge("dataset_frozen_rows", length or 0)
        return dataset

    # -- export / load ---------------------------------------------------------------

    def export_csv(self, path) -> None:
        """Write the public-dataset artifact (samples with denormalized keys).

        Atomic (temp file + rename) and dtype-annotated: a crash
        mid-export can never leave a truncated CSV behind for
        :meth:`load_csv` to half-parse, and integer/bool columns survive
        the round trip with their exact dtypes.
        """
        write_csv(self.to_frame(), Path(path), dtypes=True)

    @staticmethod
    def load_csv(path) -> Frame:
        """Load an exported dataset back as an analysis Frame."""
        return read_csv(Path(path))

    @classmethod
    def from_frame(
        cls,
        frame: Frame,
        probes: Sequence[Probe],
        targets: Sequence[TargetVM],
        dedup: bool = False,
        obs=None,
    ) -> "CampaignDataset":
        """Rebuild an (unfrozen) dataset from an exported sample frame.

        The inverse of :meth:`to_frame` for the sample columns, given the
        probe/target metadata (regenerable from the platform seed).  Used
        to resume an interrupted collection from its exported partial
        dataset in a fresh process.
        """
        dataset = cls(probes, targets, dedup=dedup, obs=obs)
        for probe_id, target, timestamp, rtt_min, rtt_avg, sent, rcvd in zip(
            frame["probe_id"],
            frame["target"],
            frame["timestamp"],
            frame["rtt_min"],
            frame["rtt_avg"],
            frame["sent"],
            frame["rcvd"],
        ):
            dataset.append(
                probe_id=int(probe_id),
                target_key=str(target),
                timestamp=int(timestamp),
                rtt_min=float(rtt_min),
                rtt_avg=float(rtt_avg),
                sent=int(sent),
                rcvd=int(rcvd),
            )
        return dataset
