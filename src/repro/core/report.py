"""Headline statistics — the paper's in-text quantitative claims ("T1").

Collects every number the paper states in prose into one dataclass, so the
benchmark harness (and EXPERIMENTS.md) can print paper-vs-measured rows:

* 32 countries reach the cloud under 10 ms, another 21 within 10-20 ms;
* all but 16 countries meet the PL threshold (best case);
* ~80 % of EU/NA probes reach a datacenter within MTP (Fig 5);
* >75 % of NA/EU/OC *samples* below PL (Fig 6);
* wireless probes ~2.5x slower than wired (Fig 7);
* the Facebook checkpoint: most users reach cloud services within 40 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.constants import (
    MTP_MS,
    PAPER_COUNTRIES_10_TO_20MS,
    PAPER_COUNTRIES_OVER_PL,
    PAPER_COUNTRIES_UNDER_10MS,
    PAPER_FACEBOOK_MS,
    PAPER_WIRELESS_PENALTY,
    PL_MS,
)
from repro.core.dataset import CampaignDataset
from repro.core.distributions import samples_by_continent
from repro.core.lastmile import wireless_penalty
from repro.core.proximity import (
    bucket_counts,
    country_min_latency,
    countries_beyond_pl,
    min_rtt_cdf_by_continent,
    population_within,
)
from repro.errors import CampaignError


@dataclass(frozen=True)
class HeadlineReport:
    """Every in-text claim, measured on a campaign dataset."""

    samples: int
    probes: int
    countries: int
    targets: int
    countries_under_10ms: int
    countries_10_to_20ms: int
    countries_over_pl: int
    probe_share_under_mtp: Dict[str, float]
    sample_share_under_pl: Dict[str, float]
    wireless_penalty: float
    facebook_share_under_40ms: float
    population_share_under_pl: float

    # -- paper comparison ------------------------------------------------------

    def paper_comparison(self) -> Dict[str, Dict[str, float]]:
        """{claim: {paper: x, measured: y}} for every headline number."""
        return {
            "countries < 10 ms": {
                "paper": PAPER_COUNTRIES_UNDER_10MS,
                "measured": self.countries_under_10ms,
            },
            "countries 10-20 ms": {
                "paper": PAPER_COUNTRIES_10_TO_20MS,
                "measured": self.countries_10_to_20ms,
            },
            "countries > PL": {
                "paper": PAPER_COUNTRIES_OVER_PL,
                "measured": self.countries_over_pl,
            },
            "EU probes < MTP (share)": {
                "paper": 0.80,
                "measured": self.probe_share_under_mtp.get("EU", float("nan")),
            },
            "NA probes < MTP (share)": {
                "paper": 0.80,
                "measured": self.probe_share_under_mtp.get("NA", float("nan")),
            },
            "wireless penalty (x)": {
                "paper": PAPER_WIRELESS_PENALTY,
                "measured": self.wireless_penalty,
            },
            "samples < 40 ms, NA+EU (share)": {
                "paper": 0.75,  # "most users ... within 40 ms" (Facebook [60])
                "measured": self.facebook_share_under_40ms,
            },
        }

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"samples={self.samples:,}  probes={self.probes}  "
            f"countries={self.countries}  targets={self.targets}",
            f"countries <10ms: {self.countries_under_10ms}   "
            f"10-20ms: {self.countries_10_to_20ms}   "
            f">PL: {self.countries_over_pl}",
            "probe share under MTP: "
            + "  ".join(
                f"{c}={v:.0%}" for c, v in sorted(self.probe_share_under_mtp.items())
            ),
            "sample share under PL: "
            + "  ".join(
                f"{c}={v:.0%}" for c, v in sorted(self.sample_share_under_pl.items())
            ),
            f"wireless penalty: {self.wireless_penalty:.2f}x   "
            f"under-40ms share (NA+EU): {self.facebook_share_under_40ms:.0%}",
            f"population within PL (best case): {self.population_share_under_pl:.0%}",
        ]
        return "\n".join(lines)


def headline_report(dataset: CampaignDataset) -> HeadlineReport:
    """Compute every headline number from a campaign dataset."""
    country_frame = country_min_latency(dataset)
    buckets = bucket_counts(country_frame)
    cdfs = min_rtt_cdf_by_continent(dataset)
    probe_share_under_mtp = {
        continent: cdf.fraction_below(MTP_MS) for continent, cdf in cdfs.items()
    }
    by_continent = samples_by_continent(dataset)
    sample_share_under_pl = {
        continent: float(np.mean(values <= PL_MS))
        for continent, values in by_continent.items()
    }
    well_connected = [
        values for c, values in by_continent.items() if c in ("NA", "EU")
    ]
    if not well_connected:
        raise CampaignError("no NA/EU samples for the Facebook checkpoint")
    joined = np.concatenate(well_connected)
    return HeadlineReport(
        samples=dataset.num_samples,
        probes=len(np.unique(dataset.column("probe_id"))),
        countries=len(country_frame),
        targets=len(dataset.targets),
        countries_under_10ms=buckets["<10 ms"],
        countries_10_to_20ms=buckets["10-20 ms"],
        countries_over_pl=len(countries_beyond_pl(country_frame)),
        probe_share_under_mtp=probe_share_under_mtp,
        sample_share_under_pl=sample_share_under_pl,
        wireless_penalty=wireless_penalty(dataset),
        facebook_share_under_40ms=float(np.mean(joined <= PAPER_FACEBOOK_MS)),
        population_share_under_pl=population_within(dataset, PL_MS),
    )
