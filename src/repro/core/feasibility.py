"""Measurement-informed feasibility analysis (paper §5, Figure 8).

:mod:`repro.apps.feasibility` defines the *static* feasibility zone from
literature constants; this module closes the loop with the campaign's own
measurements: per continent, which applications can the measured cloud
already serve, where would edge placement actually help, and which apps
remain infeasible over any network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.apps.catalog import Application, all_applications
from repro.apps.feasibility import FeasibilityZone, Verdict, assess
from repro.constants import FZ_LATENCY_LOW_MS
from repro.core.dataset import CampaignDataset
from repro.core.distributions import samples_by_continent
from repro.errors import CampaignError
from repro.frame import Frame


@dataclass(frozen=True)
class ContinentLatency:
    """Measured cloud-access latency summary for one continent."""

    continent: str
    p25: float
    median: float
    p75: float

    @classmethod
    def from_samples(cls, continent: str, values: np.ndarray) -> "ContinentLatency":
        if len(values) == 0:
            raise CampaignError(f"no samples for continent {continent}")
        return cls(
            continent=continent,
            p25=float(np.percentile(values, 25)),
            median=float(np.median(values)),
            p75=float(np.percentile(values, 75)),
        )


def measured_latency(dataset: CampaignDataset) -> Dict[str, ContinentLatency]:
    """Per-continent measured latency summaries."""
    return {
        continent: ContinentLatency.from_samples(continent, values)
        for continent, values in samples_by_continent(dataset).items()
    }


def app_verdict_for_continent(
    app: Application, latency: ContinentLatency, zone: FeasibilityZone = None
) -> str:
    """Where an application stands in one continent, measurements in hand.

    * ``cloud`` — the continent's median cloud RTT already meets the app's
      latency requirement;
    * ``edge`` — the cloud median misses it, but an edge placement (the
      wireless-floor latency) would meet it *and* the app sits in the FZ;
    * ``onboard`` — even the wireless floor misses the requirement;
    * ``cloud-marginal`` — cloud p25 meets it but the median does not
      (well-connected users only).
    """
    zone = zone if zone is not None else FeasibilityZone()
    requirement = app.latency_high_ms
    if latency.median <= requirement:
        return "cloud"
    if latency.p25 <= requirement:
        return "cloud-marginal"
    # Edge only helps when the app's *typical* requirement clears the
    # wireless last-mile floor; below it, no network placement suffices.
    if app.latency_center_ms >= FZ_LATENCY_LOW_MS:
        return "edge"
    return "onboard"


def feasibility_matrix(dataset: CampaignDataset) -> Frame:
    """The full Figure 8 companion table: app x continent verdicts,
    static FZ verdict included."""
    latencies = measured_latency(dataset)
    zone = FeasibilityZone()
    records = []
    for app in all_applications():
        static = assess(app, zone)
        row = {
            "application": app.slug,
            "fz_verdict": static.name,
            "fz_overlap": round(zone.overlap(app), 3),
        }
        for continent in sorted(latencies):
            row[continent] = app_verdict_for_continent(app, latencies[continent], zone)
        records.append(row)
    columns = ["application", "fz_verdict", "fz_overlap"] + sorted(latencies)
    return Frame.from_records(records, columns=columns)


def edge_beneficiaries(dataset: CampaignDataset) -> Tuple[str, ...]:
    """Apps that are in the FZ *and* under-served by the measured cloud in
    at least one continent — the ones a real edge deployment would help."""
    matrix = feasibility_matrix(dataset)
    continents = [c for c in matrix.columns if len(c) == 2]
    out = []
    for row in matrix.iter_rows():
        if row["fz_verdict"] != Verdict.IN_ZONE.name:
            continue
        if any(row[c] == "edge" for c in continents):
            out.append(str(row["application"]))
    return tuple(out)


def cloud_sufficient_share(dataset: CampaignDataset) -> Dict[str, float]:
    """Per continent: share of cataloged apps the measured cloud serves.

    Backs the conclusion that "in well-connected areas ... the cloud is
    able to satisfy almost all application requirements".
    """
    latencies = measured_latency(dataset)
    apps = all_applications()
    shares = {}
    for continent, latency in latencies.items():
        served = sum(
            1
            for app in apps
            if app_verdict_for_continent(app, latency) in ("cloud", "cloud-marginal")
        )
        shares[continent] = served / len(apps)
    return shares
