"""Proximity to the cloud (paper §4.2: Figures 4 and 5).

Figure 4: for every country, the minimum RTT its *best* probe ever
observed to *any* datacenter, bucketed for the choropleth map.

Figure 5: per-continent CDFs of every probe's minimum RTT to its nearest
datacenter — "optimistic" numbers by construction, as the paper notes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.constants import FIG4_BUCKET_LABELS, FIG4_BUCKETS_MS, PL_MS
from repro.core.dataset import CampaignDataset
from repro.core.filtering import unprivileged_mask
from repro.errors import CampaignError
from repro.frame import ECDF, Frame, ecdf
from repro.geo.countries import get_country

#: Human-readable labels of the Figure 4 buckets (re-exported from
#: constants so viz modules can use them without importing this package).
BUCKET_LABELS: Tuple[str, ...] = FIG4_BUCKET_LABELS


def per_probe_min(dataset: CampaignDataset) -> Dict[int, float]:
    """Minimum observed RTT per probe, over all targets and samples.

    Privileged probes and failed pings are excluded, per the methodology.
    """
    mask = unprivileged_mask(dataset)
    probe_ids = dataset.column("probe_id")[mask]
    rtts = dataset.column("rtt_min")[mask]
    if len(probe_ids) == 0:
        raise CampaignError("no valid samples to compute per-probe minima")
    order = np.argsort(probe_ids, kind="stable")
    probe_ids = probe_ids[order]
    rtts = rtts[order]
    boundaries = np.flatnonzero(np.diff(probe_ids)) + 1
    groups = np.split(rtts, boundaries)
    unique_ids = probe_ids[np.concatenate(([0], boundaries))]
    return {
        int(pid): float(np.min(group)) for pid, group in zip(unique_ids, groups)
    }


def country_min_latency(dataset: CampaignDataset) -> Frame:
    """Figure 4's underlying table: best-probe minimum RTT per country."""
    minima = per_probe_min(dataset)
    best: Dict[str, float] = {}
    for probe_id, value in minima.items():
        country = dataset.probe(probe_id).country_code
        if country not in best or value < best[country]:
            best[country] = value
    records = [
        {
            "country": country,
            "continent": get_country(country).continent,
            "min_rtt": round(value, 3),
            "bucket": bucket_label(value),
        }
        for country, value in sorted(best.items())
    ]
    return Frame.from_records(
        records, columns=["country", "continent", "min_rtt", "bucket"]
    )


def bucket_label(rtt_ms: float) -> str:
    """Figure 4 map-legend bucket of an RTT."""
    for edge, label in zip(FIG4_BUCKETS_MS, BUCKET_LABELS):
        if rtt_ms <= edge:
            return label
    return BUCKET_LABELS[-1]  # pragma: no cover (inf edge catches all)


def bucket_counts(country_frame: Frame) -> Dict[str, int]:
    """Countries per Figure 4 bucket, in legend order."""
    counts = {label: 0 for label in BUCKET_LABELS}
    for bucket in country_frame["bucket"]:
        counts[str(bucket)] += 1
    return counts


def countries_beyond_pl(country_frame: Frame) -> Tuple[str, ...]:
    """Countries whose best probe cannot reach any cloud within PL.

    The paper finds 16, "mostly in Africa".
    """
    mask = country_frame.col("min_rtt").values > PL_MS
    return tuple(country_frame.filter(mask)["country"])


def min_rtt_cdf_by_continent(dataset: CampaignDataset) -> Dict[str, ECDF]:
    """Figure 5: CDF of per-probe minimum RTT, grouped by continent."""
    minima = per_probe_min(dataset)
    by_continent: Dict[str, list] = {}
    for probe_id, value in minima.items():
        continent = dataset.probe(probe_id).continent
        by_continent.setdefault(continent, []).append(value)
    return {continent: ecdf(values) for continent, values in by_continent.items()}


def population_within(dataset: CampaignDataset, threshold_ms: float) -> float:
    """Share of covered population whose country's best-case RTT meets a bound.

    Backs the abstract's claim that the cloud is "close enough for the
    majority of the world's population".
    """
    frame = country_min_latency(dataset)
    total = 0.0
    within = 0.0
    for row in frame.iter_rows():
        country = get_country(str(row["country"]))
        total += country.population_m
        if float(row["min_rtt"]) <= threshold_ms:
            within += country.population_m
    if total == 0:
        raise CampaignError("no countries in dataset")
    return within / total
