"""Supervised collection: worker chaos, a watchdog, and degraded completion.

The collection layer's failure story so far covers the *transport*
(retries, circuit breakers, resumable interruption) — but the collector
process itself was assumed immortal.  This module drops that assumption:
a :class:`Supervisor` runs the collection fan-out while a seeded
:class:`WorkerChaos` kills or wedges workers mid-shard, and a watchdog
with per-shard deadlines reaps the casualties and reassigns their
remaining work to fresh workers.

**Determinism is the whole design.**  A chaos decision is drawn from
:func:`repro.net.rng.stream` keyed by ``(seed, "worker-chaos", msm_id,
window, attempt)`` — keyed by the *measurement window*, not the worker
or shard, so the same windows die under every worker count; keyed by the
*respawn attempt*, so a respawned worker re-rolls instead of dying at
the same spot forever.  Combined with the transport's scoped fault
schedules, a supervised collection that eventually completes every
window produces a dataset byte-identical to an unsupervised run.

Windows that keep dying past ``max_attempts`` are *quarantined*, not
fatal: collection completes in **degraded mode**, the checkpoint never
advances past a quarantined window (a later resume re-attempts it), and
the gap is surfaced through :class:`SupervisionReport` /
:func:`repro.core.completeness.health_report` instead of an exception.
A store-backed collection refuses to commit a degraded window — a
partial dataset must never become a fingerprint's cached truth.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TransportError, WorkerCrashError, WorkerHungError
from repro.net.rng import stream
from repro.core.campaign import MeasurementRecord, plan_shards, resolve_workers

_log = logging.getLogger("repro.supervisor")

#: Simulated seconds a shard may spend on one window before the watchdog
#: reaps its worker.  Sized between a slow-but-live fetch (retry backoff
#: rarely accumulates more than ~2 minutes per window) and the injected
#: hang durations (10+ minutes), so hangs are reaped and mere slowness
#: is not.
DEFAULT_DEADLINE_S = 300.0

#: Attempts (1 initial + respawns) a window gets before quarantine.
DEFAULT_MAX_ATTEMPTS = 4


class WorkerChaos:
    """Seeded per-window worker-fault decisions (crash / hang / none)."""

    def __init__(self, seed: int, profile):
        from repro.atlas.faults import get_worker_profile

        self.seed = int(seed)
        self.profile = get_worker_profile(profile)

    def decide(
        self, msm_id: int, fetch_from: int, stop: int, attempt: int
    ) -> Optional[str]:
        """The fault (if any) hitting this window's ``attempt``-th try."""
        profile = self.profile
        if profile.is_noop:
            return None
        rng = stream(
            self.seed, "worker-chaos", msm_id, fetch_from, stop, attempt
        )
        draw = float(rng.random())
        if draw < profile.crash:
            return "crash"
        if draw < profile.crash + profile.hang:
            return "hang"
        return None


@dataclass
class SupervisionReport:
    """What a supervised collection survived (and what it gave up on)."""

    profile: str
    workers: int
    deadline_s: float
    max_attempts: int
    windows: int = 0
    collected: int = 0
    crashes: int = 0
    hangs: int = 0
    hangs_recovered: int = 0
    respawns: int = 0
    #: ``(msm_id, target_key)`` of windows abandoned past ``max_attempts``.
    quarantined: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def as_dict(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "workers": self.workers,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "windows": self.windows,
            "collected": self.collected,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "hangs_recovered": self.hangs_recovered,
            "respawns": self.respawns,
            "degraded": self.degraded,
            "quarantined": [
                {"msm_id": msm_id, "target": target}
                for msm_id, target in self.quarantined
            ],
        }


@dataclass
class _ShardDeath:
    """One worker casualty: where it died, why, and what it orphaned."""

    entry: Tuple[int, int, int, int]
    kind: str  # "crash" | "hung" | "transport"
    detail: str
    #: The shard's untouched entries past the fatal one — requeued
    #: as-is (their attempt counts are the fatal window's fault, not
    #: theirs).
    remaining: List[Tuple[int, int, int, int]] = field(default_factory=list)


class Supervisor:
    """Watchdog-supervised collection over crash/hang-prone workers.

    Round-based: the pending windows are sharded across workers
    (:func:`~repro.core.campaign.plan_shards`, thread executor — the
    chaos is simulated, so true parallelism is beside the point); each
    worker walks its shard on a fresh
    :meth:`~repro.atlas.api.transport.Transport.worker_clone` until it
    finishes or dies.  A death keeps the shard's completed records,
    re-queues the fatal window with its attempt count bumped (quarantined
    past ``max_attempts``) and the untouched remainder as-is, and the
    next round respawns workers over whatever is left.  Records merge
    into the dataset only after the queue drains, in canonical fleet
    order — the same merge discipline as
    :class:`~repro.core.campaign.ParallelCollector`, which is what keeps
    the dataset (and any store stream) byte-identical to an
    unsupervised run.
    """

    def __init__(
        self,
        campaign,
        workers=None,
        worker_faults="crashy",
        deadline_s: float = DEFAULT_DEADLINE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        self.campaign = campaign
        self.workers = resolve_workers(workers)
        self.chaos = WorkerChaos(campaign.platform.seed, worker_faults)
        self.deadline_s = float(deadline_s)
        self.max_attempts = int(max_attempts)

    def collect_into(
        self, dataset, start=None, stop=None, checkpoint=None
    ) -> SupervisionReport:
        campaign = self.campaign
        window_start = campaign.start_time if start is None else int(start)
        window_stop = campaign.stop_time if stop is None else int(stop)
        pending = campaign._pending(window_start, window_stop, checkpoint)
        report = SupervisionReport(
            profile=self.chaos.profile.name,
            workers=self.workers,
            deadline_s=self.deadline_s,
            max_attempts=self.max_attempts,
            windows=len(pending),
        )
        obs = campaign.obs
        # Queue entries are (fleet_index, msm_id, fetch_from, attempt).
        queue = [(index, msm_id, fetch_from, 0) for index, msm_id, fetch_from in pending]
        done: List[MeasurementRecord] = []
        with obs.span(
            "campaign.supervise",
            workers=self.workers,
            profile=self.chaos.profile.name,
            measurements=len(pending),
        ):
            while queue:
                queue.sort(key=lambda entry: entry[0])
                shards = [
                    [queue[i] for i in shard]
                    for shard in plan_shards(len(queue), self.workers)
                ]
                queue = []
                outcomes = self._run_round(shards, window_stop)
                for records, death, recovered, transport_stats, obs_export in outcomes:
                    done.extend(records)
                    report.hangs_recovered += recovered
                    campaign._worker_transport_stats.append(transport_stats)
                    obs.merge(obs_export)
                    if death is None:
                        continue
                    self._account_death(death, report, obs)
                    queue.extend(death.remaining)
                    index, msm_id, fetch_from, attempt = death.entry
                    if attempt + 1 >= self.max_attempts:
                        target = campaign.platform.fleet[index].key
                        report.quarantined.append((msm_id, target))
                        obs.inc("supervisor_quarantined_total")
                        _log.warning(
                            "window quarantined after %d attempts: "
                            "measurement %d (%s)",
                            attempt + 1, msm_id, target,
                        )
                    else:
                        queue.append((index, msm_id, fetch_from, attempt + 1))
                if queue:
                    report.respawns += 1
                    obs.inc("supervisor_respawns_total")
            done.sort(key=lambda record: record.index)
            for record in done:
                campaign._merge_record(dataset, record, checkpoint, window_stop)
            report.collected = len(done)
        campaign.supervision = report
        if report.degraded:
            obs.event(
                "supervisor.degraded",
                quarantined=len(report.quarantined),
                collected=report.collected,
            )
        return report

    def _account_death(self, death: _ShardDeath, report, obs) -> None:
        if death.kind == "crash":
            report.crashes += 1
            obs.inc("supervisor_crashes_total")
        elif death.kind == "hung":
            report.hangs += 1
            obs.inc("supervisor_hangs_total")
        else:
            report.crashes += 1
            obs.inc("supervisor_crashes_total", kind="transport")
        _log.warning("worker died (%s): %s", death.kind, death.detail)

    def _run_round(self, shards, window_stop):
        """Run one round's shards; a single shard skips the pool."""
        if len(shards) == 1:
            return [self._supervised_shard(shards[0], window_stop, 0)]
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            futures = [
                pool.submit(self._supervised_shard, shard, window_stop, number)
                for number, shard in enumerate(shards)
            ]
            return [future.result() for future in futures]

    def _supervised_shard(
        self,
        entries: Sequence[Tuple[int, int, int, int]],
        window_stop: int,
        shard_index: int,
    ):
        """One worker's life: walk the shard until it finishes or dies.

        Returns ``(records, death, recovered_hangs, transport_stats,
        obs_export)``; ``death`` is ``None`` for a natural death of old
        age.  Chaos strikes *before* a window's fetch, so a respawned
        attempt replays the identical scoped transport schedule and
        yields the identical record bytes.
        """
        campaign = self.campaign
        transport = campaign.transport.worker_clone()
        records: List[MeasurementRecord] = []
        death: Optional[_ShardDeath] = None
        recovered = 0
        with transport.obs.span(
            "supervisor.shard", shard=shard_index, measurements=len(entries)
        ):
            for position, entry in enumerate(entries):
                index, msm_id, fetch_from, attempt = entry
                rest = list(entries[position + 1 :])
                vm = campaign.platform.fleet[index]
                fate = self.chaos.decide(msm_id, fetch_from, window_stop, attempt)
                if fate == "crash":
                    death = _ShardDeath(
                        entry,
                        "crash",
                        str(WorkerCrashError(shard_index, msm_id)),
                        remaining=rest,
                    )
                    break
                if fate == "hang":
                    hang_s = self.chaos.profile.hang_duration_s
                    transport.clock.sleep(hang_s)
                    if hang_s >= self.deadline_s:
                        death = _ShardDeath(
                            entry,
                            "hung",
                            str(
                                WorkerHungError(
                                    shard_index, msm_id, hang_s, self.deadline_s
                                )
                            ),
                            remaining=rest,
                        )
                        break
                    # Slow but under deadline: the watchdog lets it live.
                try:
                    record = campaign._fetch_measurement(
                        transport, index, msm_id, vm, fetch_from, window_stop
                    )
                except TransportError as exc:
                    death = _ShardDeath(entry, "transport", str(exc), remaining=rest)
                    break
                records.append(record)
                if fate == "hang":
                    # Survived its own hang: account the recovery.
                    recovered += 1
                    transport.obs.inc("supervisor_hangs_recovered_total")
        return records, death, recovered, transport.stats(), transport.obs.export()
