"""Wired vs wireless last mile (paper §4.3, Figure 7).

Figure 7 tracks the RTT of tag-selected wired and wireless probe cohorts
over the measurement period; the paper finds wireless probes take ~2.5x
longer to reach the nearest cloud region, consistent with the 10-40 ms
added wireless latency reported by prior studies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.core.filtering import cohort_masks
from repro.core.nearest import nearest_target_mask
from repro.errors import CampaignError
from repro.frame import Frame

#: Seconds per time-series bucket in :func:`cohort_timeseries` (one week).
WEEK_S = 7 * 86_400


def _nearest_region_rtts(dataset: CampaignDataset, mask: np.ndarray) -> np.ndarray:
    """Per-sample mask restricted to each probe's *nearest* region.

    Figure 7 measures access "to the nearest cloud region"; we identify
    each probe's nearest region as the one with the smallest median RTT,
    then keep only samples towards it.
    """
    return nearest_target_mask(dataset, mask)


def cohort_timeseries(dataset: CampaignDataset, bucket_s: int = WEEK_S) -> Frame:
    """Figure 7's series: median nearest-region RTT per cohort per week."""
    if bucket_s <= 0:
        raise CampaignError(f"bucket size must be positive: {bucket_s}")
    masks = cohort_masks(dataset)
    timestamps = dataset.column("timestamp")
    rtts = dataset.column("rtt_min")
    records = []
    nearest = {
        cohort: _nearest_region_rtts(dataset, mask) for cohort, mask in masks.items()
    }
    start = int(timestamps.min())
    stop = int(timestamps.max()) + 1
    for bucket_start in range(start, stop, bucket_s):
        bucket_mask = (timestamps >= bucket_start) & (timestamps < bucket_start + bucket_s)
        row = {"bucket_start": bucket_start}
        for cohort in ("wired", "wireless"):
            values = rtts[nearest[cohort] & bucket_mask]
            row[f"{cohort}_median"] = (
                float(np.median(values)) if len(values) else float("nan")
            )
            row[f"{cohort}_samples"] = int(len(values))
        records.append(row)
    return Frame.from_records(
        records,
        columns=[
            "bucket_start",
            "wired_median", "wired_samples",
            "wireless_median", "wireless_samples",
        ],
    )


def wireless_penalty(dataset: CampaignDataset) -> float:
    """The headline multiplier: wireless median / wired median (~2.5x)."""
    masks = cohort_masks(dataset)
    rtts = dataset.column("rtt_min")
    medians: Dict[str, float] = {}
    for cohort, mask in masks.items():
        keep = _nearest_region_rtts(dataset, mask)
        values = rtts[keep]
        if len(values) == 0:
            raise CampaignError(f"no samples in cohort {cohort!r}")
        medians[cohort] = float(np.median(values))
    if medians["wired"] <= 0:
        raise CampaignError("wired cohort median is non-positive")
    return medians["wireless"] / medians["wired"]


def added_wireless_latency_ms(dataset: CampaignDataset) -> float:
    """Absolute added latency of the wireless cohort (paper cites 10-40 ms)."""
    masks = cohort_masks(dataset)
    rtts = dataset.column("rtt_min")
    values = {}
    for cohort, mask in masks.items():
        keep = _nearest_region_rtts(dataset, mask)
        values[cohort] = float(np.median(rtts[keep]))
    return values["wireless"] - values["wired"]
