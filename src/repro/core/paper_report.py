"""Full reproduction report generator.

Renders one self-contained Markdown document from a campaign dataset:
every figure as text, the headline table, the validation checklist, and
the extension analyses.  Used by ``repro report`` and handy as a single
artifact to diff between runs or attach to a paper-reproduction record.
"""

from __future__ import annotations

from typing import List

from repro.core.dataset import CampaignDataset
from repro.core.distributions import all_samples_cdf_by_continent, threshold_table
from repro.core.lastmile import cohort_timeseries, wireless_penalty
from repro.core.proximity import (
    bucket_counts,
    country_min_latency,
    min_rtt_cdf_by_continent,
)
from repro.core.report import headline_report
from repro.core.trends import collect_figure1, detect_eras
from repro.core.validation import summary_text, validate
from repro.core.whatif import scenario_report


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"


def _code(text: str) -> str:
    return f"```\n{text}\n```"


def generate_report(dataset: CampaignDataset, seed: int = 0) -> str:
    """Render the full Markdown reproduction report."""
    # Imported here: repro.viz renders figures *of* repro.core results, so
    # importing it at module load time would be circular.
    from repro.viz import bucket_listing, cdf_plot, table, world_map

    report = headline_report(dataset)
    sections: List[str] = [
        "# Latency Shears — reproduction report\n",
        f"Dataset: {dataset.num_samples:,} samples, "
        f"{report.probes} probes, {report.countries} countries, "
        f"{report.targets} targets.\n",
    ]

    sections.append(
        _section("Headline statistics (T1)", _code(report.summary()))
    )

    checks = validate(report)
    sections.append(
        _section("Paper-shape validation", _code(summary_text(checks)))
    )

    figure1 = collect_figure1(seed=seed)
    eras = detect_eras(figure1)
    sections.append(
        _section(
            "Figure 1 — eras",
            f"CDN until {eras.cdn_until}, Cloud from {eras.cloud_from}, "
            f"Edge from {eras.edge_from}.",
        )
    )

    country_frame = country_min_latency(dataset)
    counts = bucket_counts(country_frame)
    sections.append(
        _section(
            "Figure 4 — minimum RTT per country",
            _code(world_map(country_frame))
            + "\n\n"
            + _code(bucket_listing(country_frame))
            + f"\n\nBucket counts: {counts}",
        )
    )

    sections.append(
        _section(
            "Figure 5 — per-probe minimum RTT CDFs",
            _code(cdf_plot(min_rtt_cdf_by_continent(dataset), x_max=200.0)),
        )
    )

    sections.append(
        _section(
            "Figure 6 — all samples to the closest datacenter",
            _code(cdf_plot(all_samples_cdf_by_continent(dataset), x_max=300.0))
            + "\n\n"
            + _code(table(threshold_table(dataset))),
        )
    )

    penalty = wireless_penalty(dataset)
    sections.append(
        _section(
            "Figure 7 — wired vs wireless",
            _code(table(cohort_timeseries(dataset, bucket_s=2 * 86_400)))
            + f"\n\nWireless penalty: **{penalty:.2f}x** (paper ~2.5x).",
        )
    )

    scenarios = scenario_report()
    lines = [
        f"| {name} | {row['wireless_floor_ms']:.1f} | {row['apps_in_zone']} "
        f"| {row['rescued_market_busd']:.0f} |"
        for name, row in scenarios.items()
    ]
    sections.append(
        _section(
            "What-if — future last miles",
            "| scenario | floor ms | apps in zone | rescued B$ |\n"
            "|---|---|---|---|\n" + "\n".join(lines),
        )
    )

    return "\n".join(sections)


def write_report(dataset: CampaignDataset, path, seed: int = 0) -> None:
    from pathlib import Path

    Path(path).write_text(generate_report(dataset, seed=seed), encoding="utf-8")
