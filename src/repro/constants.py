"""Shared constants for the Latency Shears reproduction.

Values are taken directly from the paper (Mohan et al., HotNets '20) or from
the sources the paper cites.  Each constant carries a short provenance note so
downstream modules do not have to re-derive them.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Human-perception latency thresholds (paper §3, Figure 2).
# ---------------------------------------------------------------------------

#: Motion-to-Photon threshold in milliseconds.  Inputs and their rendered
#: effect must stay in sync within this budget or users experience motion
#: sickness (paper §3, citing Mania et al. [43]).
MTP_MS = 20.0

#: Portion of the MTP budget consumed by the display pipeline itself
#: (refresh rate, pixel switching; paper §3 citing Choi et al. [16]).
MTP_DISPLAY_MS = 13.0

#: Remaining MTP budget for compute + rendering + network RTT.
MTP_COMPUTE_BUDGET_MS = MTP_MS - MTP_DISPLAY_MS

#: The strictest MTP compute budget observed for HUD systems in the NASA
#: study the paper cites (Bailey et al. [7]).
MTP_HUD_MS = 2.5

#: Perceivable Latency threshold in milliseconds — the delay at which visual
#: feedback lag becomes noticeable (paper §3, citing Raaen et al. [54]).
PL_MS = 100.0

#: Human Reaction Time in milliseconds — stimulus to motor response (paper
#: §3, citing Woods et al. [73]).
HRT_MS = 250.0

# ---------------------------------------------------------------------------
# Measurement campaign parameters (paper §4.1).
# ---------------------------------------------------------------------------

#: Number of cloud regions with compute datacenters targeted by the study.
NUM_CLOUD_REGIONS = 101

#: Number of countries hosting those regions.
NUM_DATACENTER_COUNTRIES = 21

#: Number of cloud providers measured.
NUM_PROVIDERS = 7

#: Minimum size of the probe population ("3200+ RIPE Atlas probes").
MIN_PROBES = 3200

#: Number of countries the probes are distributed over.
NUM_PROBE_COUNTRIES = 166

#: Ping interval used by the campaign (every three hours).
MEASUREMENT_INTERVAL_S = 3 * 3600

#: Campaign duration: "nine months of data collection" starting Sept 2019.
CAMPAIGN_MONTHS = 9

#: Campaign start, expressed as a Unix timestamp (2019-09-01 00:00:00 UTC).
CAMPAIGN_START_TS = 1_567_296_000

#: Approximate size of the published dataset.
DATASET_DATAPOINTS = 3_200_000

# ---------------------------------------------------------------------------
# Figure 4 latency buckets (map legend).
# ---------------------------------------------------------------------------

#: Upper edges (ms) of the choropleth buckets used in Figure 4.
FIG4_BUCKETS_MS = (10.0, 20.0, 50.0, 100.0, float("inf"))

#: Human-readable labels of the Figure 4 buckets (map legend order).
FIG4_BUCKET_LABELS = ("<10 ms", "10-20 ms", "20-50 ms", "50-100 ms", ">100 ms")

# ---------------------------------------------------------------------------
# Feasibility-zone boundaries (paper §5, Figure 8).
# ---------------------------------------------------------------------------

#: Lower latency bound of the edge feasibility zone: current wireless
#: last-mile access latency (~10 ms; paper §5).
FZ_LATENCY_LOW_MS = 10.0

#: Upper latency bound of the feasibility zone: the human reaction time,
#: which the cloud already supports almost globally (paper §5).
FZ_LATENCY_HIGH_MS = HRT_MS

#: Bandwidth threshold for edge aggregation gains: ~1 GB generated per
#: entity per day (paper §5, estimated from Jiang et al. [35]).
FZ_BANDWIDTH_GB_PER_DAY = 1.0

# ---------------------------------------------------------------------------
# Headline results the reproduction is calibrated against (paper §4.2-4.3).
# ---------------------------------------------------------------------------

#: Countries whose best probe reaches a datacenter under 10 ms.
PAPER_COUNTRIES_UNDER_10MS = 32

#: Additional countries in the 10-20 ms bucket.
PAPER_COUNTRIES_10_TO_20MS = 21

#: Countries (mostly in Africa) that cannot reach the cloud within PL.
PAPER_COUNTRIES_OVER_PL = 16

#: Multiplier by which wireless probes are slower than wired ones (Fig 7).
PAPER_WIRELESS_PENALTY = 2.5

#: Added last-mile wireless latency range reported by prior work (ms).
PAPER_WIRELESS_ADDED_MS = (10.0, 40.0)

#: Facebook study checkpoint: most users reach cloud services within 40 ms.
PAPER_FACEBOOK_MS = 40.0
