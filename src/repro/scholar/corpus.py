"""Synthetic publication corpus for the Figure 1 retrospective.

The paper's Figure 1 plots yearly publication counts for "cloud computing"
and "edge computing" from 2004 to 2019, collected by a custom Google
Scholar crawler.  Scholar is unreachable offline, so we synthesize a
corpus whose per-keyword yearly counts follow logistic technology-adoption
dynamics calibrated to the figure's shape:

* *CDN* — an early, modest wave (the term "edge" first appears here);
* *cloud computing* — takes off around 2008, grows explosively, saturates
  mid-decade;
* *edge computing* — near zero before the 2009 cloudlets paper, then a
  steep rise from ~2014 onwards.

Individual publication records are generated lazily and deterministically
so the crawler can paginate through tens of thousands of entries without
materializing them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import ReproError
from repro.net.rng import stream

#: Year range covered by the corpus (Figure 1's x-axis).
FIRST_YEAR = 2004
LAST_YEAR = 2019


@dataclass(frozen=True)
class AdoptionCurve:
    """Logistic growth with optional post-peak decay."""

    start_year: int
    midpoint: float
    steepness: float
    saturation: float
    decay_after: int = 9999
    decay_rate: float = 0.0

    def value(self, year: int) -> float:
        if year < self.start_year:
            return 0.0
        logistic = self.saturation / (
            1.0 + math.exp(-self.steepness * (year - self.midpoint))
        )
        if year > self.decay_after:
            logistic *= math.exp(-self.decay_rate * (year - self.decay_after))
        return logistic


#: Keyword dynamics calibrated to Figure 1's publication series.
CURVES: Dict[str, AdoptionCurve] = {
    "content delivery network": AdoptionCurve(
        start_year=1998, midpoint=2004.0, steepness=0.7, saturation=1800.0,
        decay_after=2012, decay_rate=0.03,
    ),
    "cloud computing": AdoptionCurve(
        start_year=2006, midpoint=2011.5, steepness=0.85, saturation=24_000.0,
        decay_after=2016, decay_rate=0.02,
    ),
    "edge computing": AdoptionCurve(
        start_year=2009, midpoint=2017.8, steepness=0.95, saturation=14_000.0,
    ),
}

_VENUES = (
    "SIGCOMM", "HotNets", "IMC", "NSDI", "INFOCOM", "CoNEXT", "SEC",
    "MobiCom", "MobiSys", "SoCC", "IEEE Communications", "Computer",
)

_TOPIC_WORDS = (
    "architecture", "placement", "offloading", "caching", "scheduling",
    "orchestration", "measurement", "pricing", "latency", "bandwidth",
    "energy", "privacy", "security", "federation", "migration",
)


@dataclass(frozen=True)
class Publication:
    """One synthetic scholarly record."""

    keyword: str
    year: int
    index: int
    title: str
    venue: str
    num_authors: int
    citations: int

    @property
    def identifier(self) -> str:
        return f"{self.keyword.replace(' ', '-')}:{self.year}:{self.index}"


def known_keywords() -> Tuple[str, ...]:
    return tuple(CURVES)


def publication_count(keyword: str, year: int) -> int:
    """Number of publications mentioning ``keyword`` in ``year``."""
    try:
        curve = CURVES[keyword]
    except KeyError:
        raise ReproError(f"unknown corpus keyword: {keyword!r}") from None
    return int(round(curve.value(year)))


def yearly_counts(keyword: str, first: int = FIRST_YEAR, last: int = LAST_YEAR) -> Dict[int, int]:
    """The Figure 1 publication series for one keyword."""
    if first > last:
        raise ReproError(f"invalid year range [{first}, {last}]")
    return {year: publication_count(keyword, year) for year in range(first, last + 1)}


def make_publication(keyword: str, year: int, index: int, seed: int = 0) -> Publication:
    """Deterministically generate the ``index``-th record of a year."""
    total = publication_count(keyword, year)
    if not 0 <= index < total:
        raise ReproError(
            f"index {index} out of range for {keyword!r}/{year} (count {total})"
        )
    rng = stream(seed, "scholar", keyword, year, index)
    topic = _TOPIC_WORDS[int(rng.integers(0, len(_TOPIC_WORDS)))]
    venue = _VENUES[int(rng.integers(0, len(_VENUES)))]
    age = max(0, LAST_YEAR - year)
    citations = int(rng.pareto(1.3) * (1 + age * 2))
    return Publication(
        keyword=keyword,
        year=year,
        index=index,
        title=f"Towards {topic} for {keyword} ({year}-{index:05d})",
        venue=venue,
        num_authors=int(rng.integers(1, 8)),
        citations=citations,
    )


def iter_publications(
    keyword: str, year: int, seed: int = 0, start: int = 0
) -> Iterator[Publication]:
    """Lazily iterate a year's records from offset ``start``."""
    total = publication_count(keyword, year)
    for index in range(start, total):
        yield make_publication(keyword, year, index, seed)
