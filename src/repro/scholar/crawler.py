"""A Google-Scholar-style crawler over the synthetic corpus.

The paper collected its publication series "by a custom web crawler for
Google Scholar, based on an open source implementation" (footnote 2,
citing Kreibich's ``scholar.py``).  This module reproduces that tooling
against :mod:`repro.scholar.corpus`: paginated result pages, an "about N
results" estimate, request budgets, and the CAPTCHA wall every Scholar
crawler eventually hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import CrawlerError, ReproError
from repro.scholar.corpus import (
    FIRST_YEAR,
    LAST_YEAR,
    Publication,
    iter_publications,
    publication_count,
)

#: Results per page, like Scholar's default.
PAGE_SIZE = 10

#: Requests allowed before the service shows a CAPTCHA.
DEFAULT_REQUEST_BUDGET = 2_000


@dataclass
class ResultPage:
    """One page of crawl results."""

    keyword: str
    year: int
    start: int
    total_estimate: int
    entries: Tuple[Publication, ...]

    @property
    def has_next(self) -> bool:
        return self.start + len(self.entries) < self.total_estimate


@dataclass
class ScholarCrawler:
    """Paginating crawler with a request budget.

    Example::

        crawler = ScholarCrawler(seed=7)
        series = crawler.yearly_counts("edge computing")
    """

    seed: int = 0
    page_size: int = PAGE_SIZE
    request_budget: int = DEFAULT_REQUEST_BUDGET
    requests_made: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ReproError(f"page size must be positive: {self.page_size}")

    # -- low-level request --------------------------------------------------

    def _spend_request(self) -> None:
        if self.requests_made >= self.request_budget:
            raise CrawlerError(
                "request budget exhausted: the service responded with a CAPTCHA"
            )
        self.requests_made += 1

    def fetch_page(self, keyword: str, year: int, start: int = 0) -> ResultPage:
        """Fetch one result page (costs one request)."""
        if start < 0:
            raise ReproError(f"start offset must be non-negative: {start}")
        self._spend_request()
        total = publication_count(keyword, year)
        entries = []
        for publication in iter_publications(keyword, year, self.seed, start=start):
            entries.append(publication)
            if len(entries) >= self.page_size:
                break
        return ResultPage(
            keyword=keyword,
            year=year,
            start=start,
            total_estimate=total,
            entries=tuple(entries),
        )

    # -- high-level collection ------------------------------------------------

    def count_results(self, keyword: str, year: int) -> int:
        """The 'about N results' estimate (costs one request)."""
        return self.fetch_page(keyword, year, start=0).total_estimate

    def yearly_counts(
        self, keyword: str, first: int = FIRST_YEAR, last: int = LAST_YEAR
    ) -> Dict[int, int]:
        """The Figure 1 series: one count request per year."""
        if first > last:
            raise ReproError(f"invalid year range [{first}, {last}]")
        return {
            year: self.count_results(keyword, year) for year in range(first, last + 1)
        }

    def crawl_year(
        self, keyword: str, year: int, max_records: int = None
    ) -> Iterator[Publication]:
        """Iterate a year's records page by page (full-crawl mode)."""
        start = 0
        fetched = 0
        while True:
            page = self.fetch_page(keyword, year, start=start)
            for publication in page.entries:
                yield publication
                fetched += 1
                if max_records is not None and fetched >= max_records:
                    return
            if not page.has_next:
                return
            start += len(page.entries)

    def top_cited(self, keyword: str, year: int, n: int = 10) -> List[Publication]:
        """The ``n`` most-cited records of a year (crawls the full year)."""
        records = list(self.crawl_year(keyword, year))
        records.sort(key=lambda pub: pub.citations, reverse=True)
        return records[:n]
