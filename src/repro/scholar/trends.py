"""Google-Trends-style search-interest series.

Figure 1's red curves show web-search popularity of "cloud computing" and
"edge computing" from 2004 to 2019.  Trends data is normalized: within a
comparison, the highest monthly value across all series becomes 100.

The underlying raw-interest curves are calibrated to the published chart:
cloud search interest climbs from 2008, peaks around 2012, then declines
slowly; edge interest stays negligible until ~2014 and climbs steadily to
the end of the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.net.rng import stream
from repro.scholar.corpus import FIRST_YEAR, LAST_YEAR


@dataclass(frozen=True)
class InterestCurve:
    """Raw (un-normalized) search interest: logistic rise, exponential cool-off."""

    start_year: float
    midpoint: float
    steepness: float
    peak: float
    peak_year: float
    cooloff_rate: float

    def value(self, when: float) -> float:
        """Raw interest at fractional year ``when``."""
        if when < self.start_year:
            return 0.0
        rise = self.peak / (1.0 + math.exp(-self.steepness * (when - self.midpoint)))
        if when > self.peak_year:
            rise *= math.exp(-self.cooloff_rate * (when - self.peak_year))
        return rise


CURVES: Dict[str, InterestCurve] = {
    "cloud computing": InterestCurve(
        start_year=2007.0, midpoint=2010.2, steepness=1.6,
        peak=100.0, peak_year=2012.0, cooloff_rate=0.055,
    ),
    "edge computing": InterestCurve(
        start_year=2013.5, midpoint=2018.3, steepness=0.9,
        peak=75.0, peak_year=2030.0, cooloff_rate=0.0,
    ),
    "content delivery network": InterestCurve(
        start_year=2004.0, midpoint=2006.0, steepness=1.0,
        peak=18.0, peak_year=2009.0, cooloff_rate=0.02,
    ),
}

#: Months per sampled year.
MONTHS = 12


def _raw_value(keyword: str, when: float) -> float:
    try:
        curve = CURVES[keyword]
    except KeyError:
        raise ReproError(f"unknown trends keyword: {keyword!r}") from None
    return curve.value(when)


def monthly_series(
    keyword: str,
    first: int = FIRST_YEAR,
    last: int = LAST_YEAR,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Raw monthly interest: list of ``(fractional_year, value)``.

    Includes mild seasonal structure and sampling noise, as real Trends
    exports do.
    """
    if first > last:
        raise ReproError(f"invalid year range [{first}, {last}]")
    rng = stream(seed, "trends", keyword)
    series = []
    for year in range(first, last + 1):
        for month in range(MONTHS):
            when = year + month / MONTHS
            seasonal = 1.0 + 0.05 * math.sin(2.0 * math.pi * (month - 1) / MONTHS)
            noise = 1.0 + float(rng.normal(0.0, 0.03))
            series.append((when, max(0.0, _raw_value(keyword, when) * seasonal * noise)))
    return series


def normalized_series(
    keywords: Sequence[str],
    first: int = FIRST_YEAR,
    last: int = LAST_YEAR,
    seed: int = 0,
) -> Dict[str, List[Tuple[float, float]]]:
    """Trends-style joint normalization: global maximum becomes 100."""
    raw = {kw: monthly_series(kw, first, last, seed) for kw in keywords}
    peak = max((value for series in raw.values() for _, value in series), default=0.0)
    if peak == 0.0:
        raise ReproError("all series are zero; cannot normalize")
    factor = 100.0 / peak
    return {
        kw: [(when, value * factor) for when, value in series]
        for kw, series in raw.items()
    }


def yearly_average(series: List[Tuple[float, float]]) -> Dict[int, float]:
    """Collapse a monthly series to yearly means (Figure 1's granularity)."""
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for when, value in series:
        year = int(when)
        sums[year] = sums.get(year, 0.0) + value
        counts[year] = counts.get(year, 0) + 1
    return {year: sums[year] / counts[year] for year in sums}
