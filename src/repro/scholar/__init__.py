"""Scholar/Trends substrate for the Figure 1 retrospective."""

from repro.scholar.corpus import (
    CURVES as PUBLICATION_CURVES,
    FIRST_YEAR,
    LAST_YEAR,
    AdoptionCurve,
    Publication,
    iter_publications,
    known_keywords,
    make_publication,
    publication_count,
    yearly_counts,
)
from repro.scholar.crawler import (
    DEFAULT_REQUEST_BUDGET,
    PAGE_SIZE,
    ResultPage,
    ScholarCrawler,
)
from repro.scholar.export import (
    citation_key,
    export_bibtex,
    export_csv,
    to_bibtex,
)
from repro.scholar.trends import (
    CURVES as TREND_CURVES,
    InterestCurve,
    monthly_series,
    normalized_series,
    yearly_average,
)

__all__ = [
    "AdoptionCurve",
    "DEFAULT_REQUEST_BUDGET",
    "FIRST_YEAR",
    "InterestCurve",
    "LAST_YEAR",
    "PAGE_SIZE",
    "PUBLICATION_CURVES",
    "Publication",
    "ResultPage",
    "ScholarCrawler",
    "TREND_CURVES",
    "citation_key",
    "export_bibtex",
    "export_csv",
    "to_bibtex",
    "iter_publications",
    "known_keywords",
    "make_publication",
    "monthly_series",
    "normalized_series",
    "publication_count",
    "yearly_average",
    "yearly_counts",
]
