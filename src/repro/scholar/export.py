"""Citation export — the raison d'être of the crawler the paper cites.

Kreibich's ``scholar.py`` (footnote 2) exports query results as citation
records; we reproduce that surface for the synthetic corpus: BibTeX and
CSV formatting of :class:`~repro.scholar.corpus.Publication` records,
with stable citation keys.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List

from repro.errors import ReproError
from repro.scholar.corpus import Publication

_FAMILY_NAMES = (
    "Anand", "Baker", "Chen", "Dietrich", "Eriksson", "Fernandez", "Gupta",
    "Hansen", "Ito", "Johnson", "Kim", "Lopez", "Martin", "Nguyen", "Okafor",
    "Petrov", "Quintero", "Rossi", "Schmidt", "Tanaka",
)


def _author_list(publication: Publication) -> List[str]:
    """Deterministic synthetic author names for a record."""
    base = (publication.year * 31 + publication.index) % len(_FAMILY_NAMES)
    return [
        _FAMILY_NAMES[(base + offset) % len(_FAMILY_NAMES)]
        for offset in range(publication.num_authors)
    ]


def citation_key(publication: Publication) -> str:
    """A stable BibTeX key, e.g. ``chen2018edge00042``."""
    first_author = _author_list(publication)[0].lower()
    keyword_slug = publication.keyword.split()[0]
    return f"{first_author}{publication.year}{keyword_slug}{publication.index:05d}"


def to_bibtex(publication: Publication) -> str:
    """One record as a BibTeX ``@inproceedings`` entry."""
    authors = " and ".join(_author_list(publication))
    return (
        f"@inproceedings{{{citation_key(publication)},\n"
        f"  title     = {{{publication.title}}},\n"
        f"  author    = {{{authors}}},\n"
        f"  booktitle = {{Proceedings of {publication.venue}}},\n"
        f"  year      = {{{publication.year}}},\n"
        f"  note      = {{citations: {publication.citations}}}\n"
        f"}}"
    )


def export_bibtex(publications: Iterable[Publication]) -> str:
    """A BibTeX file body for a batch of records."""
    entries = [to_bibtex(publication) for publication in publications]
    if not entries:
        raise ReproError("no publications to export")
    return "\n\n".join(entries) + "\n"


def export_csv(publications: Iterable[Publication]) -> str:
    """scholar.py-style CSV export (one row per record)."""
    publications = list(publications)
    if not publications:
        raise ReproError("no publications to export")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["key", "title", "authors", "venue", "year", "citations", "keyword"]
    )
    for publication in publications:
        writer.writerow(
            [
                citation_key(publication),
                publication.title,
                "; ".join(_author_list(publication)),
                publication.venue,
                publication.year,
                publication.citations,
                publication.keyword,
            ]
        )
    return buffer.getvalue()
