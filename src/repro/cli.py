"""Command-line interface.

Exposes the reproduction as a small tool::

    repro footprint                 # Figure 3: regions + probe fleet
    repro run --scale tiny          # run a campaign, print headline report
    repro run --faults flaky        # same, through a chaos transport
    repro run --resume state/       # checkpointed, resumable collection
    repro figure 5 --scale tiny     # regenerate one figure as text
    repro apps                      # Figure 2/8 catalog and verdicts
    repro whatif                    # 5G what-if scenario table
    repro export --out DIR          # campaign + figure-data bundles
    repro store write cache/        # collect once into a catalog store
    repro run --store cache/        # cache hit: reopen instead of collect
    repro store verify cache/       # checksum every committed store
    repro store scrub cache/        # classify ALL damage (never stops early)
    repro store repair cache/entry  # surgically rebuild damaged chunks
    repro run --worker-faults crashy  # supervised, self-healing collection

Every subcommand accepts ``--seed`` (default 7), ``--faults`` (chaos
profile for the collection transport), ``--workers`` (parallel
collection; the frozen dataset is byte-identical at any worker count),
``--fast-path`` (vectorized columnar synthesis; bit-identical to the
scalar path), ``--log-level`` / ``--json-logs`` (shared structured
logging, see :mod:`repro.obs.logconfig`), and ``--metrics-out`` (export
the run's metrics snapshot as JSON plus Prometheus text).  ``repro obs
report`` runs an instrumented campaign and prints the full health +
telemetry picture; ``repro report --health`` embeds the same report.
Campaign-consuming subcommands (run / figure / report / validate /
export / obs) also take ``--store DIR`` — collect through a
content-addressed catalog so identical campaigns become cache hits —
and ``--from-store PATH`` to open one committed store directly; ``repro
store {write,info,verify,scrub,repair,gc}`` manages the catalog itself
(``verify --strict --json`` emits a machine-readable per-chunk damage
report and exits nonzero on *any* damage, debris included).  ``repro run
--worker-faults {steady,crashy,wedged,pathological}`` collects under a
supervisor that injects (seeded, deterministic) worker crashes and hangs
and heals them by respawning — the dataset stays byte-identical.
Designed to be driven
programmatically too: :func:`main` takes an argv list and returns an exit
code, printing results to stdout (notices go to stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "medium", "full"],
        default="tiny",
        help="campaign size (default tiny)",
    )
    parser.add_argument(
        "--faults",
        choices=["none", "flaky", "outage", "hostile"],
        default="none",
        help="collect through a fault-injecting transport (default none); "
        "all faults are seeded, so runs replay deterministically",
    )
    parser.add_argument(
        "--workers",
        default="auto",
        metavar="N",
        help="collection workers: an integer, or 'auto' to match the "
        "machine (default auto; tiny campaigns stay serial).  The frozen "
        "dataset is byte-identical at any worker count, faults included",
    )
    parser.add_argument(
        "--worker-faults",
        choices=["steady", "crashy", "wedged", "pathological"],
        default="steady",
        dest="worker_faults",
        help="inject seeded worker crashes/hangs and collect under the "
        "self-healing supervisor (default steady: no supervision). "
        "Recoverable chaos converges to the byte-identical dataset",
    )
    parser.add_argument(
        "--fast-path",
        choices=["on", "off", "auto"],
        default="auto",
        dest="fast_path",
        help="vectorized columnar result synthesis (default auto: used "
        "whenever the transport can serve it, which excludes --faults "
        "runs; 'on' fails instead of falling back; 'off' forces the "
        "scalar path).  Both paths produce bit-identical datasets",
    )
    parser.add_argument(
        "--executor",
        choices=["auto", "process", "thread"],
        default="auto",
        help="parallel-collection executor (default auto: fork-based "
        "process workers where os.fork exists, threads elsewhere). "
        "Output is byte-identical either way",
    )
    parser.add_argument(
        "--direct-store",
        choices=["auto", "on", "off"],
        default="auto",
        dest="direct_store",
        help="shared-nothing direct-to-store writes for multiprocess "
        "--store runs: workers stream full shards to disk themselves "
        "(default auto: used whenever eligible; 'on' fails instead of "
        "falling back; 'off' forces the stitched record path).  The "
        "committed store is byte-identical either way",
    )
    from repro.obs import LOG_LEVELS

    parser.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default="warning",
        dest="log_level",
        help="log verbosity for the shared 'repro' logger (default warning)",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        dest="json_logs",
        help="emit log records as JSON lines instead of plain text",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        dest="metrics_out",
        help="write the run's metrics snapshot to PATH as JSON, plus "
        "Prometheus text exposition next to it (PATH with a .prom suffix). "
        "The snapshot is deterministic: a pure function of (seed, fault "
        "profile, retry policy, worker count)",
    )


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    """Persistent-store options for campaign-consuming subcommands."""
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="catalog of persistent campaign stores: an identical campaign "
        "(same seed/faults/scale/schedule) is re-opened from DIR as a "
        "verified zero-copy mmap instead of being re-synthesized; a miss "
        "collects normally and commits the store for next time",
    )
    parser.add_argument(
        "--from-store",
        default=None,
        metavar="PATH",
        dest="from_store",
        help="load the dataset straight from one committed store directory "
        "(no synthesis at all); probe/target tables are rebuilt from the "
        "store's recorded provenance seed",
    )


def _dataset_from_store(path, obs):
    """Open one concrete store directory as a verified dataset."""
    from repro.errors import StoreError
    from repro.store import open_dataset

    try:
        return open_dataset(path, obs=obs)
    except StoreError as exc:
        raise SystemExit(f"cannot load store {path}: {exc}")


def _run_with_store(
    campaign, workers, store, worker_faults=None, executor="auto", direct="auto"
):
    """``campaign.run`` with store errors surfaced as clean exits."""
    from repro.errors import StoreError

    try:
        return campaign.run(
            workers=workers,
            store=store,
            worker_faults=worker_faults,
            executor=executor,
            direct=direct,
        )
    except StoreError as exc:
        where = getattr(store, "root", store)
        raise SystemExit(
            f"store-backed run failed: {exc}\n"
            f"(inspect with `repro store scrub {where}`, then "
            f"`repro store repair` the damaged entry — or delete it to "
            f"re-collect)"
        )


def _resolve_worker_faults(args):
    """Map ``--worker-faults`` to what :meth:`Campaign.collect` takes."""
    profile = getattr(args, "worker_faults", "steady")
    return None if profile == "steady" else profile


def _print_supervision(campaign) -> None:
    """One-line supervised-collection summary (after a chaos run)."""
    supervision = getattr(campaign, "supervision", None)
    if supervision is None:
        return
    line = (f"worker chaos {supervision.profile}: "
            f"{supervision.crashes} crashes, {supervision.hangs} hangs "
            f"({supervision.hangs_recovered} recovered), "
            f"{supervision.respawns} respawn rounds")
    if supervision.degraded:
        line += (f"; DEGRADED: {len(supervision.quarantined)} of "
                 f"{supervision.windows} windows quarantined")
    print(line)
    print()


def _resolve_cli_workers(args):
    """Map the ``--workers`` string to what :meth:`Campaign.collect` takes.

    ``auto`` resolves to serial for tiny campaigns — fork/thread pool
    overhead dwarfs a tiny collection — and defers to
    :func:`~repro.core.campaign.resolve_workers` otherwise.
    """
    raw = getattr(args, "workers", "auto")
    if raw == "auto":
        return 1 if getattr(args, "scale", "tiny") == "tiny" else "auto"
    try:
        workers = int(raw)
    except ValueError:
        raise SystemExit(f"--workers must be an integer or 'auto': {raw!r}")
    if workers < 1:
        raise SystemExit(f"--workers must be positive: {workers}")
    return workers


def _build_campaign(args):
    from repro.core.campaign import Campaign, CampaignScale
    from repro.obs import Obs

    faults = getattr(args, "faults", "none")
    fast_path = getattr(args, "fast_path", "auto")
    if fast_path == "on" and faults != "none":
        raise SystemExit(
            "--fast-path on cannot serve a --faults run: fault injection "
            "needs the raw result stream (use auto or off)"
        )
    direct = getattr(args, "direct_store", "auto")
    if direct == "on":
        if faults != "none":
            raise SystemExit(
                "--direct-store on cannot serve a --faults run: the row "
                "stream is not precomputable under chaos (use auto or off)"
            )
        if not getattr(args, "store", None):
            raise SystemExit(
                "--direct-store on requires --store PATH: workers stream "
                "shards directly into the store directory"
            )
    scale = next(s for s in CampaignScale if s.label == args.scale)
    return Campaign.from_paper(
        scale=scale,
        seed=args.seed,
        faults=faults,
        fast_path=fast_path,
        obs=Obs(),
    )


def _write_metrics(campaign, path) -> None:
    """Export the campaign's metrics snapshot: JSON at ``path``, the
    Prometheus text exposition next to it."""
    import json
    from pathlib import Path

    out = Path(path)
    if out.parent != Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    registry = campaign.obs.registry
    out.write_text(json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n")
    prom = out.with_suffix(".prom")
    prom.write_text(registry.to_prometheus())
    print(f"metrics written to {out} and {prom}", file=sys.stderr)


def _maybe_write_metrics(campaign, args) -> None:
    out = getattr(args, "metrics_out", None)
    if out and campaign.obs.enabled:
        _write_metrics(campaign, out)


def _run_campaign(args):
    campaign = _build_campaign(args)
    if getattr(args, "from_store", None):
        dataset = _dataset_from_store(args.from_store, campaign.obs)
        _maybe_write_metrics(campaign, args)
        return campaign, dataset
    dataset = _run_with_store(
        campaign,
        _resolve_cli_workers(args),
        getattr(args, "store", None),
        worker_faults=_resolve_worker_faults(args),
        executor=getattr(args, "executor", "auto"),
        direct=getattr(args, "direct_store", "auto"),
    )
    _maybe_write_metrics(campaign, args)
    return campaign, dataset


def _campaign_dataset(args):
    return _run_campaign(args)[1]


def _cmd_footprint(args) -> int:
    from repro.atlas.population import population_summary
    from repro.cloud.regions import datacenter_countries, regions_per_provider
    from repro.viz import bar_chart

    print("Cloud regions per provider:")
    print(bar_chart(regions_per_provider(), fmt="{:.0f}"))
    print(f"\ndatacenter countries: {len(datacenter_countries())}")
    print(f"probe fleet: {population_summary(seed=args.seed)}")
    return 0


def _resume_collect(
    campaign, state_dir, workers=None, worker_faults=None, executor="auto"
):
    """Checkpointed collection: resume from (and persist to) ``state_dir``.

    Returns the completed dataset, or ``None`` after saving state when
    the transport gave out mid-collection — re-running the same command
    picks up where it stopped without duplicating a sample.
    """
    from repro.core.campaign import CollectionCheckpoint
    from repro.core.dataset import CampaignDataset
    from repro.errors import CollectionInterruptedError

    state_dir.mkdir(parents=True, exist_ok=True)
    checkpoint_path = state_dir / "checkpoint.json"
    partial_path = state_dir / "partial.csv"
    try:
        checkpoint = (
            CollectionCheckpoint.load(checkpoint_path)
            if checkpoint_path.exists()
            else CollectionCheckpoint()
        )
        dataset = None
        if partial_path.exists():
            dataset = CampaignDataset.from_frame(
                CampaignDataset.load_csv(partial_path),
                campaign.platform.probes,
                campaign.platform.fleet,
                dedup=True,
                obs=campaign.obs,
            )
            print(f"resuming: {len(checkpoint.high_water)} measurements "
                  f"already collected")
    except (ValueError, KeyError, OSError) as exc:
        print(f"corrupt resume state in {state_dir}: {exc}", file=sys.stderr)
        print("remove the state directory (or its bad file) and re-run",
              file=sys.stderr)
        raise SystemExit(2)
    try:
        dataset = campaign.collect(
            checkpoint=checkpoint,
            dataset=dataset,
            workers=workers,
            worker_faults=worker_faults,
            executor=executor,
        )
    except CollectionInterruptedError as exc:
        exc.checkpoint.save(checkpoint_path)
        exc.dataset.export_csv(partial_path)
        print(f"collection interrupted: {exc}", file=sys.stderr)
        print(f"state saved to {state_dir}; re-run to resume", file=sys.stderr)
        return None
    checkpoint_path.unlink(missing_ok=True)
    partial_path.unlink(missing_ok=True)
    return dataset


def _cmd_run(args) -> int:
    from pathlib import Path

    from repro.core.completeness import collection_health
    from repro.core.report import headline_report

    campaign = _build_campaign(args)
    workers = _resolve_cli_workers(args)
    worker_faults = _resolve_worker_faults(args)
    if args.from_store:
        if args.resume or args.store:
            raise SystemExit("--from-store cannot combine with --resume/--store")
        dataset = _dataset_from_store(args.from_store, campaign.obs)
    elif args.store:
        if args.resume:
            raise SystemExit(
                "--store and --resume are mutually exclusive (a store-backed "
                "collection commits only complete campaigns)"
            )
        dataset = _run_with_store(
            campaign, workers, args.store, worker_faults=worker_faults,
            executor=getattr(args, "executor", "auto"),
            direct=getattr(args, "direct_store", "auto"),
        )
    elif args.resume:
        campaign.create_measurements()
        dataset = _resume_collect(
            campaign, Path(args.resume), workers=workers,
            worker_faults=worker_faults,
            executor=getattr(args, "executor", "auto"),
        )
        if dataset is None:
            return 3
    else:
        campaign.create_measurements()
        dataset = campaign.collect(
            workers=workers, worker_faults=worker_faults,
            executor=getattr(args, "executor", "auto"),
            direct=getattr(args, "direct_store", "auto"),
        )
    _maybe_write_metrics(campaign, args)
    _print_supervision(campaign)
    if args.faults != "none":
        health = collection_health(campaign)
        transport = health["transport"]
        print(f"chaos profile {transport['profile']}: "
              f"{sum(transport['faults'].values())} faults injected, "
              f"{transport['retries']} retries, "
              f"{health['quarantined']} quarantined, "
              f"{health['duplicates_dropped']} duplicates dropped")
        print()
    report = headline_report(dataset)
    print(report.summary())
    print()
    for claim, values in report.paper_comparison().items():
        print(f"{claim:38s} paper={values['paper']:<8.2f} "
              f"measured={values['measured']:.2f}")
    return 0


def _cmd_figure(args) -> int:
    from repro.viz import bucket_listing, cdf_plot, line_chart, table, world_map

    number = args.number
    if number in (1, 2, 8):
        # Figures that need no campaign.
        if number == 1:
            from repro.core.trends import collect_figure1, detect_eras

            figure1 = collect_figure1(seed=args.seed)
            eras = detect_eras(figure1)
            series = {}
            for keyword in ("cloud computing", "edge computing"):
                sub = figure1.filter(figure1["keyword"] == keyword)
                series[keyword.split()[0]] = [
                    (int(y), float(v))
                    for y, v in zip(sub["year"], sub["search_interest"])
                ]
            print(line_chart(series))
            print(f"eras: CDN until {eras.cdn_until}, cloud from "
                  f"{eras.cloud_from}, edge from {eras.edge_from}")
            return 0
        if number == 2:
            from repro.apps.quadrants import quadrant_table

            for quadrant, apps in quadrant_table().items():
                print(f"{quadrant.name}: " + ", ".join(a.name for a in apps))
            return 0
        from repro.apps.feasibility import assess_all

        for slug, verdict in assess_all().items():
            print(f"{slug:24s} {verdict.value}")
        return 0

    dataset = _campaign_dataset(args)
    if number == 3:
        print(f"targets: {len(dataset.targets)}  probes: {len(dataset.probes)}")
        return 0
    if number == 4:
        from repro.core.proximity import country_min_latency

        frame = country_min_latency(dataset)
        print(world_map(frame))
        print()
        print(bucket_listing(frame))
        return 0
    if number == 5:
        from repro.core.proximity import min_rtt_cdf_by_continent

        print(cdf_plot(min_rtt_cdf_by_continent(dataset), x_max=200.0))
        return 0
    if number == 6:
        from repro.core.distributions import all_samples_cdf_by_continent, threshold_table

        print(cdf_plot(all_samples_cdf_by_continent(dataset), x_max=300.0))
        print()
        print(table(threshold_table(dataset)))
        return 0
    if number == 7:
        from repro.core.lastmile import cohort_timeseries, wireless_penalty

        print(table(cohort_timeseries(dataset, bucket_s=2 * 86_400)))
        print(f"\nwireless penalty: {wireless_penalty(dataset):.2f}x")
        return 0
    print(f"unknown figure number: {number}", file=sys.stderr)
    return 2


def _cmd_apps(args) -> int:
    from repro.apps.catalog import all_applications
    from repro.apps.feasibility import FeasibilityZone, assess
    from repro.apps.quadrants import classify

    zone = FeasibilityZone()
    print(f"{'application':26s} {'quadrant':9s} {'overlap':>8s}  verdict")
    for app in all_applications():
        print(f"{app.name:26s} {classify(app).name:9s} "
              f"{zone.overlap(app):>7.0%}  {assess(app, zone).value}")
    return 0


def _cmd_whatif(args) -> int:
    from repro.core.whatif import SCENARIOS, scenario_report, verdict_changes

    report = scenario_report()
    print(f"{'scenario':14s} {'floor ms':>9s} {'in zone':>8s} {'rescued B$':>11s}")
    for name in SCENARIOS:
        row = report[name]
        print(f"{name:14s} {row['wireless_floor_ms']:>9.1f} "
              f"{row['apps_in_zone']:>8d} {row['rescued_market_busd']:>11.0f}")
    print("\nverdict changes under promised 5G:")
    for change in verdict_changes("5g-promised"):
        print(f"  {change.slug}: {change.baseline.name} -> {change.scenario.name}")
    return 0


def _cmd_validate(args) -> int:
    from repro.core.report import headline_report
    from repro.core.validation import all_pass, summary_text, validate

    dataset = _campaign_dataset(args)
    results = validate(headline_report(dataset))
    print(summary_text(results))
    return 0 if all_pass(results) else 1


def _cmd_report(args) -> int:
    import json

    from repro.core.paper_report import generate_report, write_report

    if args.health:
        from repro.core.completeness import health_report

        campaign, dataset = _run_campaign(args)
        print(json.dumps(
            health_report(campaign, dataset), indent=2, sort_keys=True,
            default=float,
        ))
        return 0
    dataset = _campaign_dataset(args)
    if args.out:
        write_report(dataset, args.out, seed=args.seed)
        print(f"report written to {args.out}")
    else:
        print(generate_report(dataset, seed=args.seed))
    return 0


def _cmd_obs(args) -> int:
    """Run an instrumented campaign and print its telemetry report."""
    import json

    from repro.core.completeness import health_report

    campaign, dataset = _run_campaign(args)
    report = health_report(campaign, dataset)
    print(json.dumps(report, indent=2, sort_keys=True, default=float))
    if args.trace_out:
        campaign.obs.tracer.export_jsonl(args.trace_out)
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def _scrub_targets(path):
    """Scrub ``path`` (one store or a whole catalog) → (reports, extra).

    ``extra`` is catalog-level damage (uncommitted / dangling entries);
    empty when ``path`` is a single store.
    """
    from repro.store import is_store_dir, scrub, scrub_catalog

    if is_store_dir(path):
        return [scrub(path)], []
    return scrub_catalog(path)


def _cmd_store(args) -> int:
    """Persistent-store maintenance: write / info / verify / scrub /
    repair / gc / stats (zone-map backfill)."""
    import json
    from pathlib import Path

    from repro.store import (
        CampaignCatalog,
        Manifest,
        is_store_dir,
    )

    path = Path(args.path)

    if args.action == "write":
        campaign = _build_campaign(args)
        catalog = CampaignCatalog(path)
        already = catalog.lookup(campaign, obs=campaign.obs)
        if already is not None:
            print(f"store already committed: {already.path} "
                  f"({already.rows:,} rows)")
            return 0
        dataset = _run_with_store(
            campaign, _resolve_cli_workers(args), catalog,
            executor=getattr(args, "executor", "auto"),
            direct=getattr(args, "direct_store", "auto"),
        )
        _maybe_write_metrics(campaign, args)
        committed = catalog.lookup(campaign, obs=campaign.obs)
        print(f"store committed: {committed.path}")
        print(f"rows: {len(dataset):,}  shards: "
              f"{len(committed.manifest.shards)}  "
              f"bytes: {committed.manifest.total_chunk_bytes():,}")
        return 0

    if args.action == "info":
        if is_store_dir(path):
            manifest = Manifest.load(path)
            print(f"store: {path}")
            zoned, total = manifest.zone_map_coverage()
            print(f"rows: {manifest.rows:,}  shards: {len(manifest.shards)}  "
                  f"generation: {manifest.generation}  "
                  f"bytes: {manifest.total_chunk_bytes():,}  "
                  f"zone maps: {zoned}/{total}")
            print("schema: " + ", ".join(
                f"{name}:{dtype}" for name, dtype in manifest.schema
            ))
            if manifest.provenance:
                print("provenance: " + json.dumps(
                    manifest.provenance, sort_keys=True
                ))
            return 0
        catalog = CampaignCatalog(path)
        entries = catalog.entries()
        if not entries:
            print(f"{path}: no committed stores")
            return 0
        print(f"catalog: {path} ({len(entries)} stores)")
        for fingerprint in entries:
            manifest = Manifest.load(catalog.path_for(fingerprint))
            provenance = manifest.provenance or {}
            print(f"  {fingerprint[:16]}…  rows={manifest.rows:,}  "
                  f"scale={provenance.get('scale', '?')}  "
                  f"faults={provenance.get('fault_profile', '?')}  "
                  f"seed={provenance.get('seed', '?')}")
        return 0

    if args.action in ("verify", "scrub"):
        reports, catalog_damage = _scrub_targets(path)
        if not reports and not catalog_damage:
            print(f"{path}: nothing to verify", file=sys.stderr)
            return 2
        corrupt = sum(1 for report in reports if not report.intact)
        littered = (
            sum(1 for report in reports if not report.ok) - corrupt
            + len(catalog_damage)
        )
        if getattr(args, "json", False):
            payload = {
                "path": str(path),
                "ok": corrupt == 0 and littered == 0,
                "intact": corrupt == 0,
                "stores": [report.as_dict() for report in reports],
                "catalog_damage": [d.as_dict() for d in catalog_damage],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for report in reports:
                if report.intact:
                    status = "ok" if report.ok else "ok (debris)"
                    print(f"{status} {report.path} ({report.rows:,} rows, "
                          f"{report.shards} shards)")
                else:
                    from repro.store.scrub import INTEGRITY_KINDS

                    first = next(
                        d for d in report.damage if d.kind in INTEGRITY_KINDS
                    )
                    print(f"CORRUPT {report.path}: {first.kind} {first.file}"
                          + (f" ({first.detail})" if first.detail else ""))
                if args.action == "scrub" or not report.intact:
                    for damage in report.damage:
                        print(f"  {damage.kind:18s} {damage.file}"
                              + (f"  {damage.detail}" if damage.detail else ""))
            for damage in catalog_damage:
                print(f"  {damage.kind:18s} {damage.file}"
                      + (f"  {damage.detail}" if damage.detail else ""))
            if corrupt:
                print(f"{corrupt} damaged store(s): quarantine + rebuild "
                      f"with `repro store repair {path}`")
        if corrupt:
            return 1
        if getattr(args, "strict", False) and littered:
            return 1
        return 0

    if args.action == "stats":
        from repro.store import backfill_zone_maps

        if is_store_dir(path):
            targets = [path]
        else:
            catalog = CampaignCatalog(path)
            targets = [catalog.path_for(f) for f in catalog.entries()]
            if not targets:
                print(f"{path}: no committed stores", file=sys.stderr)
                return 2
        for target in targets:
            manifest, updated = backfill_zone_maps(
                target, refresh=getattr(args, "refresh", False)
            )
            zoned, total = manifest.zone_map_coverage()
            print(f"{target}: {updated} zone maps "
                  f"{'refreshed' if getattr(args, 'refresh', False) else 'backfilled'}, "
                  f"coverage {zoned}/{total} chunks")
        return 0

    if args.action == "repair":
        from repro.errors import StoreRepairError
        from repro.store import repair

        reports, _ = _scrub_targets(path)
        damaged = [r for r in reports if not r.intact or not r.ok]
        if not damaged:
            print(f"{path}: nothing to repair")
            return 0
        for report in damaged:
            try:
                result = repair(report.path)
            except StoreRepairError as exc:
                raise SystemExit(f"repair failed: {exc}")
            print(f"repaired {result.path}: "
                  f"{len(result.repaired_chunks)} chunks rebuilt from "
                  f"{result.resynthesized_windows} re-synthesized windows, "
                  f"{len(result.quarantined)} damaged originals quarantined, "
                  f"{len(result.swept)} debris files swept")
        return 0

    # gc
    if is_store_dir(path):
        from repro.store import gc_store

        removed = gc_store(path)
    else:
        removed = CampaignCatalog(path).gc()
    for name in removed:
        print(f"removed {name}")
    print(f"gc: {len(removed)} entries removed from {path}")
    return 0


def _cmd_export(args) -> int:
    from pathlib import Path

    from repro.core.distributions import all_samples_cdf_by_continent
    from repro.core.proximity import country_min_latency, min_rtt_cdf_by_continent
    from repro.viz import ecdf_payload, export_figure, frame_payload

    dataset = _campaign_dataset(args)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    dataset.export_csv(out / "dataset.csv")
    export_figure(out / "fig4.json", figure="fig4",
                  data=frame_payload(country_min_latency(dataset)))
    export_figure(out / "fig5.json", figure="fig5",
                  data=ecdf_payload(min_rtt_cdf_by_continent(dataset)))
    export_figure(out / "fig6.json", figure="fig6",
                  data=ecdf_payload(all_samples_cdf_by_continent(dataset)))
    print(f"exported dataset + figure bundles to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Latency Shears reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    footprint = sub.add_parser("footprint", help="Figure 3 footprint")
    _add_common(footprint)
    footprint.set_defaults(func=_cmd_footprint)

    run = sub.add_parser(
        "run", aliases=["collect"], help="run a campaign, print headline report"
    )
    _add_common(run)
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="checkpoint collection state in DIR; an interrupted run "
        "(exit code 3) resumes from it without duplicating samples",
    )
    _add_store_args(run)
    run.set_defaults(func=_cmd_run)

    figure = sub.add_parser("figure", help="regenerate a figure as text")
    figure.add_argument("number", type=int, choices=range(1, 9))
    _add_common(figure)
    _add_store_args(figure)
    figure.set_defaults(func=_cmd_figure)

    apps = sub.add_parser("apps", help="application catalog and verdicts")
    _add_common(apps)
    apps.set_defaults(func=_cmd_apps)

    whatif = sub.add_parser("whatif", help="5G what-if scenario table")
    _add_common(whatif)
    whatif.set_defaults(func=_cmd_whatif)

    export = sub.add_parser("export", help="export dataset + figure bundles")
    _add_common(export)
    export.add_argument("--out", default="out")
    _add_store_args(export)
    export.set_defaults(func=_cmd_export)

    validate = sub.add_parser(
        "validate",
        help="check a campaign against the paper's shape "
        "(use --scale small; tiny under-samples some claims)",
    )
    _add_common(validate)
    _add_store_args(validate)
    validate.set_defaults(func=_cmd_validate)

    report = sub.add_parser(
        "report", help="render the full Markdown reproduction report"
    )
    _add_common(report)
    report.add_argument("--out", default=None)
    report.add_argument(
        "--health",
        action="store_true",
        help="print the campaign health report (collection + transport + "
        "fleet completeness + metrics) as JSON instead of the Markdown "
        "report",
    )
    _add_store_args(report)
    report.set_defaults(func=_cmd_report)

    obs = sub.add_parser(
        "obs", help="run an instrumented campaign, report its telemetry"
    )
    obs.add_argument("action", choices=["report"])
    _add_common(obs)
    obs.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        dest="trace_out",
        help="write the span trace as JSONL to PATH",
    )
    _add_store_args(obs)
    obs.set_defaults(func=_cmd_obs)

    store = sub.add_parser(
        "store",
        help="persistent campaign stores: write, inspect, verify, scrub, "
        "repair, gc, stats (zone-map backfill)",
    )
    store.add_argument(
        "action",
        choices=["write", "info", "verify", "scrub", "repair", "gc", "stats"],
        help="write: collect the campaign (common options) into a catalog "
        "at PATH; info: summarize a store or catalog; verify: full "
        "checksum pass (exit 1 on corruption); scrub: classify every "
        "problem without stopping at the first; repair: quarantine "
        "damaged chunks and rebuild them from re-synthesized windows; "
        "gc: sweep uncommitted or orphaned store files; stats: backfill "
        "per-chunk zone maps (min/max/nulls) into pre-v2 manifests so "
        "scans can prune",
    )
    store.add_argument("path", help="store directory or catalog root")
    store.add_argument(
        "--strict",
        action="store_true",
        help="verify: exit nonzero on ANY damage, debris and catalog "
        "litter included (default: only integrity damage fails)",
    )
    store.add_argument(
        "--refresh",
        action="store_true",
        help="stats: recompute every zone map from chunk bytes, not just "
        "the missing ones",
    )
    store.add_argument(
        "--json",
        action="store_true",
        help="verify/scrub: emit the machine-readable per-chunk damage "
        "report instead of text lines",
    )
    _add_common(store)
    store.set_defaults(func=_cmd_store)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs import logging_config

    from repro.errors import CampaignError

    args = build_parser().parse_args(argv)
    logging_config(
        level=getattr(args, "log_level", "warning"),
        json_logs=getattr(args, "json_logs", False),
    )
    try:
        return args.func(args)
    except CampaignError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
