"""The edge feasibility zone (paper §5, Figure 8).

The paper overlays two "reality boundaries" on Figure 2:

* **latency gain zone** — edge can only help between ~10 ms (the wireless
  last-mile floor: below this no network placement helps) and HRT
  (~250 ms: above this the cloud already suffices almost globally);
* **bandwidth gain zone** — edge aggregation only pays off for entities
  generating >= ~1 GB/day.

Their intersection is the **feasibility zone (FZ)**.  Each application's
requirement ellipse overlaps the FZ to some degree; the paper's punchline
is that the hyped Q2 drivers mostly *miss* it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.apps.catalog import Application, all_applications
from repro.constants import (
    FZ_BANDWIDTH_GB_PER_DAY,
    FZ_LATENCY_HIGH_MS,
    FZ_LATENCY_LOW_MS,
)
from repro.errors import ReproError

#: Upper bound of the bandwidth axis used for overlap geometry (GB/day).
#: Figure 8's blue zone is open-ended to the right; we close it far out.
_BANDWIDTH_AXIS_MAX = 10_000.0


class Verdict(enum.Enum):
    """Where an application lands relative to the feasibility zone."""

    IN_ZONE = "edge feasibility zone"
    ONBOARD_REQUIRED = "requires onboard processing"
    CLOUD_SUFFICIENT = "supported by current cloud"
    AGGREGATION_ONLY = "edge useful only for bandwidth aggregation"


@dataclass(frozen=True)
class FeasibilityZone:
    """The FZ rectangle in (latency, bandwidth) space."""

    latency_low_ms: float = FZ_LATENCY_LOW_MS
    latency_high_ms: float = FZ_LATENCY_HIGH_MS
    bandwidth_min_gb_day: float = FZ_BANDWIDTH_GB_PER_DAY

    def __post_init__(self) -> None:
        if not 0 < self.latency_low_ms < self.latency_high_ms:
            raise ReproError("invalid FZ latency bounds")
        if self.bandwidth_min_gb_day <= 0:
            raise ReproError("invalid FZ bandwidth bound")

    # -- geometry (log-space overlap, matching the log-log figure) ---------

    @staticmethod
    def _log_overlap(a_low: float, a_high: float, b_low: float, b_high: float) -> float:
        """Fractional overlap of [a_low, a_high] with [b_low, b_high] in log space.

        Returns the share of interval *a* covered by *b* (0..1).  A point
        interval counts as fully covered when it lies inside *b*.
        """
        la, ha = math.log10(a_low), math.log10(a_high)
        lb, hb = math.log10(b_low), math.log10(b_high)
        width = ha - la
        covered = max(0.0, min(ha, hb) - max(la, lb))
        if width == 0.0:
            return 1.0 if lb <= la <= hb else 0.0
        return covered / width

    def latency_overlap(self, app: Application) -> float:
        return self._log_overlap(
            app.latency_low_ms,
            app.latency_high_ms,
            self.latency_low_ms,
            self.latency_high_ms,
        )

    def bandwidth_overlap(self, app: Application) -> float:
        return self._log_overlap(
            app.bandwidth_low_gb_day,
            app.bandwidth_high_gb_day,
            self.bandwidth_min_gb_day,
            _BANDWIDTH_AXIS_MAX,
        )

    def overlap(self, app: Application) -> float:
        """Joint FZ overlap (product of the axis overlaps)."""
        return self.latency_overlap(app) * self.bandwidth_overlap(app)


#: Minimum joint overlap for an application to count as "in the zone".
_IN_ZONE_MIN_OVERLAP = 0.25


def assess(app: Application, zone: FeasibilityZone = None) -> Verdict:
    """Verdict for one application, following §5's reasoning."""
    zone = zone if zone is not None else FeasibilityZone()
    if zone.overlap(app) >= _IN_ZONE_MIN_OVERLAP:
        return Verdict.IN_ZONE
    # Too strict for any network placement: most of the latency range lies
    # below the wireless last-mile floor.
    if app.latency_center_ms < zone.latency_low_ms:
        return Verdict.ONBOARD_REQUIRED
    # Latency is relaxed enough for the cloud; does volume still argue for
    # edge aggregation?
    if app.bandwidth_center_gb_day >= zone.bandwidth_min_gb_day:
        return Verdict.AGGREGATION_ONLY
    return Verdict.CLOUD_SUFFICIENT


def assess_all(zone: FeasibilityZone = None) -> Dict[str, Verdict]:
    """Verdicts for the whole catalog, keyed by application slug."""
    zone = zone if zone is not None else FeasibilityZone()
    return {app.slug: assess(app, zone) for app in all_applications()}


def zone_market_share(zone: FeasibilityZone = None) -> Tuple[float, float]:
    """(market inside FZ, market outside FZ), billions USD.

    The paper: "the predicted market share of applications within the edge
    FZ pales compared to those for which edge does not provide much
    benefit."
    """
    zone = zone if zone is not None else FeasibilityZone()
    inside = outside = 0.0
    for app in all_applications():
        if assess(app, zone) is Verdict.IN_ZONE:
            inside += app.market_2025_busd
        else:
            outside += app.market_2025_busd
    return inside, outside
