"""Application requirement taxonomy (Figures 2 and 8)."""

from repro.apps.catalog import (
    Application,
    all_applications,
    get_application,
    hyped_applications,
)
from repro.apps.feasibility import (
    FeasibilityZone,
    Verdict,
    assess,
    assess_all,
    zone_market_share,
)
from repro.apps.quadrants import (
    Quadrant,
    classify,
    market_share_by_quadrant,
    quadrant_table,
)
from repro.apps.thresholds import (
    ALL_THRESHOLDS,
    HRT,
    MTP,
    PL,
    Threshold,
    classify_latency,
    hud_budget_ms,
    mtp_network_budget_ms,
    strictest_satisfied,
)

__all__ = [
    "ALL_THRESHOLDS",
    "Application",
    "FeasibilityZone",
    "HRT",
    "MTP",
    "PL",
    "Quadrant",
    "Threshold",
    "Verdict",
    "all_applications",
    "assess",
    "assess_all",
    "classify",
    "classify_latency",
    "get_application",
    "hud_budget_ms",
    "hyped_applications",
    "market_share_by_quadrant",
    "mtp_network_budget_ms",
    "quadrant_table",
    "strictest_satisfied",
    "zone_market_share",
]
