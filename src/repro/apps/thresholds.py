"""Human-perception latency thresholds (paper §3).

The paper anchors application feasibility on three human limits — MTP, PL
and HRT — plus the display-pipeline budget arithmetic that shrinks MTP's
network share to a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.constants import (
    HRT_MS,
    MTP_COMPUTE_BUDGET_MS,
    MTP_DISPLAY_MS,
    MTP_HUD_MS,
    MTP_MS,
    PL_MS,
)
from repro.errors import ReproError


@dataclass(frozen=True)
class Threshold:
    """A named human-perception latency threshold."""

    code: str
    name: str
    limit_ms: float
    description: str


MTP = Threshold(
    "MTP",
    "Motion-to-Photon",
    MTP_MS,
    "Input and rendered effect must stay in sync to avoid motion sickness.",
)
PL = Threshold(
    "PL",
    "Perceivable Latency",
    PL_MS,
    "Delay between input and visual feedback becomes noticeable.",
)
HRT = Threshold(
    "HRT",
    "Human Reaction Time",
    HRT_MS,
    "Stimulus-to-motor-response delay of an engaged human.",
)

#: Thresholds in ascending strictness order (strictest first).
ALL_THRESHOLDS: Tuple[Threshold, ...] = (MTP, PL, HRT)


def classify_latency(rtt_ms: float) -> Tuple[str, ...]:
    """Codes of all thresholds an RTT satisfies (e.g. ``("PL", "HRT")``)."""
    if rtt_ms < 0:
        raise ReproError(f"RTT must be non-negative: {rtt_ms}")
    return tuple(t.code for t in ALL_THRESHOLDS if rtt_ms <= t.limit_ms)


def strictest_satisfied(rtt_ms: float) -> str:
    """Code of the strictest threshold an RTT meets, or ``"NONE"``."""
    satisfied = classify_latency(rtt_ms)
    return satisfied[0] if satisfied else "NONE"


def mtp_network_budget_ms(display_ms: float = MTP_DISPLAY_MS) -> float:
    """Network+compute budget left inside MTP after the display pipeline.

    The paper: of the ~20 ms MTP budget, ~13 ms goes to refresh/pixel
    switching, leaving ~7 ms for compute and rendering including the RTT
    to the server.
    """
    if not 0.0 <= display_ms <= MTP_MS:
        raise ReproError(f"display budget must be within [0, {MTP_MS}]: {display_ms}")
    return MTP_MS - display_ms


def hud_budget_ms() -> float:
    """The NASA HUD worst case: compute share of MTP as low as 2.5 ms."""
    return MTP_HUD_MS


assert MTP_COMPUTE_BUDGET_MS == mtp_network_budget_ms()
