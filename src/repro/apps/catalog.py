"""The driving edge applications (paper §3, Figure 2).

Each application is an ellipse on the (bandwidth, latency) plane: a latency
requirement range, a per-entity data-generation range, and an expected
2025 market size that colors the figure.  Requirement values follow the
sources the paper cites ([7, 37, 42, 54, 64]); the ellipse widths
"overcompensate for estimation errors" exactly as the paper does.

Latency is the *required response latency* in milliseconds; bandwidth is
*data generated per entity per day* in gigabytes (the paper's x-axis).
Both are geometric ranges because the plane is log-log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class Application:
    """One edge-motivating application as drawn in Figure 2."""

    slug: str
    name: str
    latency_low_ms: float
    latency_high_ms: float
    bandwidth_low_gb_day: float
    bandwidth_high_gb_day: float
    market_2025_busd: float
    human_centric: bool
    notes: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.latency_low_ms <= self.latency_high_ms:
            raise ReproError(f"{self.slug}: bad latency range")
        if not 0 < self.bandwidth_low_gb_day <= self.bandwidth_high_gb_day:
            raise ReproError(f"{self.slug}: bad bandwidth range")
        if self.market_2025_busd < 0:
            raise ReproError(f"{self.slug}: market size must be non-negative")

    @property
    def latency_center_ms(self) -> float:
        """Geometric center of the latency requirement."""
        return math.sqrt(self.latency_low_ms * self.latency_high_ms)

    @property
    def bandwidth_center_gb_day(self) -> float:
        return math.sqrt(self.bandwidth_low_gb_day * self.bandwidth_high_gb_day)

    @property
    def latency_strictness(self) -> float:
        """How narrow the latency requirement is (1 = a point, ->0 = loose)."""
        return 1.0 / (1.0 + math.log10(self.latency_high_ms / self.latency_low_ms))


# slug: (name, lat_lo, lat_hi, bw_lo, bw_hi, market, human_centric, notes)
_RAW: Dict[str, Tuple[str, float, float, float, float, float, bool, str]] = {
    "wearables": (
        "Wearables",
        50.0, 200.0, 0.01, 0.1, 70.0, True,
        "Interaction within PL; tiny sensor payloads.",
    ),
    "health-monitoring": (
        "Health monitoring",
        80.0, 500.0, 0.02, 0.2, 25.0, True,
        "Alert latencies beyond PL; periodic vitals.",
    ),
    "smart-home": (
        "Smart home",
        500.0, 10_000.0, 0.05, 0.5, 120.0, True,
        "Switches and thermostats tolerate seconds.",
    ),
    "weather-monitoring": (
        "Weather monitoring",
        60_000.0, 3_600_000.0, 0.01, 0.1, 3.0, False,
        "Minutes-to-hour reporting cycles.",
    ),
    "smart-city": (
        "Smart city",
        10_000.0, 600_000.0, 2.0, 50.0, 400.0, False,
        "Aggregation-heavy; relaxed control loops.",
    ),
    "smart-parking": (
        "Smart parking",
        5_000.0, 60_000.0, 0.5, 5.0, 10.0, False,
        "Occupancy updates every tens of seconds.",
    ),
    "traffic-monitoring": (
        "Traffic camera monitoring",
        100.0, 1_000.0, 5.0, 100.0, 25.0, False,
        "Continuous video feeds; sub-second analytics.",
    ),
    "video-analytics": (
        "Real-time video analytics",
        50.0, 500.0, 10.0, 200.0, 30.0, False,
        "The 'killer app' of Ananthanarayanan et al. [4].",
    ),
    "cloud-gaming": (
        "Cloud gaming",
        30.0, 100.0, 1.0, 10.0, 7.0, True,
        "Input lag must stay under PL; streamed frames.",
    ),
    "ar-vr": (
        "AR/VR",
        4.0, 12.0, 5.0, 50.0, 160.0, True,
        "MTP-bound; of the ~20 ms budget ~13 ms goes to the display, so "
        "the network+compute share is ~7 ms (down to 2.5 ms for HUDs).",
    ),
    "360-streaming": (
        "360-degree streaming",
        15.0, 40.0, 8.0, 60.0, 20.0, True,
        "Viewport prediction relaxes MTP slightly.",
    ),
    "autonomous-vehicles": (
        "Autonomous vehicles",
        2.0, 10.0, 30.0, 300.0, 550.0, False,
        "Control loops tighter than any network supports.",
    ),
    "industrial-robots": (
        "Industrial robotics",
        1.0, 10.0, 0.5, 5.0, 15.0, False,
        "Closed-loop control at kilohertz rates.",
    ),
    "remote-surgery": (
        "Remote surgery",
        100.0, 250.0, 2.0, 20.0, 50.0, True,
        "Active human engagement within HRT.",
    ),
    "teleoperation": (
        "Teleoperated vehicles",
        80.0, 250.0, 5.0, 50.0, 35.0, True,
        "HRT-bound remote driving.",
    ),
    "video-streaming": (
        "Video streaming",
        1_000.0, 30_000.0, 0.5, 5.0, 100.0, True,
        "Buffered playback hides seconds of delay.",
    ),
}

_CATALOG: Dict[str, Application] = {
    slug: Application(slug, *fields) for slug, fields in _RAW.items()
}


def get_application(slug: str) -> Application:
    """Look up an application by slug."""
    try:
        return _CATALOG[slug]
    except KeyError:
        raise ReproError(f"unknown application: {slug!r}") from None


def all_applications() -> Tuple[Application, ...]:
    """All cataloged applications, in catalog order."""
    return tuple(_CATALOG.values())


def hyped_applications() -> Tuple[Application, ...]:
    """The apps the paper calls the 'primary drivers of edge hype':
    the largest expected markets (AR/VR, autonomous vehicles, smart city...).
    """
    ranked = sorted(_CATALOG.values(), key=lambda a: a.market_2025_busd, reverse=True)
    return tuple(ranked[:4])
