"""Quadrant classification of applications (paper §3).

Figure 2 groups applications into four quadrants by their latency
strictness and data volume:

* **Q1** low latency, low bandwidth (wearables, health monitoring);
* **Q2** low latency, high bandwidth (AR/VR, autonomous vehicles, gaming)
  — "popularly heralded as the driving force behind edge computing";
* **Q3** high latency, high bandwidth (smart city, parking) — aggregation;
* **Q4** high latency, low bandwidth (smart home, weather) — "do not offer
  compelling reasons for deploying edge servers".

The split lines are the PL threshold on the latency axis and the paper's
1 GB/day-per-entity bandwidth threshold on the data axis.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from repro.apps.catalog import Application, all_applications
from repro.constants import FZ_BANDWIDTH_GB_PER_DAY, PL_MS


class Quadrant(enum.Enum):
    """Figure 2 quadrants."""

    Q1 = "low latency, low bandwidth"
    Q2 = "low latency, high bandwidth"
    Q3 = "high latency, high bandwidth"
    Q4 = "high latency, low bandwidth"

    @property
    def latency_sensitive(self) -> bool:
        return self in (Quadrant.Q1, Quadrant.Q2)

    @property
    def bandwidth_heavy(self) -> bool:
        return self in (Quadrant.Q2, Quadrant.Q3)


def classify(app: Application) -> Quadrant:
    """Quadrant of an application, by its requirement ellipse center."""
    low_latency = app.latency_center_ms <= PL_MS
    high_bandwidth = app.bandwidth_center_gb_day >= FZ_BANDWIDTH_GB_PER_DAY
    if low_latency and not high_bandwidth:
        return Quadrant.Q1
    if low_latency and high_bandwidth:
        return Quadrant.Q2
    if not low_latency and high_bandwidth:
        return Quadrant.Q3
    return Quadrant.Q4


def quadrant_table() -> Dict[Quadrant, Tuple[Application, ...]]:
    """All cataloged applications grouped by quadrant."""
    table: Dict[Quadrant, List[Application]] = {q: [] for q in Quadrant}
    for app in all_applications():
        table[classify(app)].append(app)
    return {q: tuple(apps) for q, apps in table.items()}


def market_share_by_quadrant() -> Dict[Quadrant, float]:
    """Total expected 2025 market (billion USD) per quadrant."""
    totals: Dict[Quadrant, float] = {q: 0.0 for q in Quadrant}
    for app in all_applications():
        totals[classify(app)] += app.market_2025_busd
    return totals
