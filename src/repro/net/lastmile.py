"""Last-mile access technologies and their latency behaviour.

The paper's §4.3 ("Nature of last-mile access") hinges on the last mile
being the latency bottleneck, with wireless probes ~2.5x slower than wired
ones.  This module models each access technology as an additive RTT
component with a floor (best case), a typical excess (queueing in the home
gateway / scheduler grants / DOCSIS request-grant cycles), and a
bufferbloat regime of occasional large spikes.

Parameter sources: the home-broadband and cellular measurement literature
the paper cites (Sundaresan et al., Jiang et al., Nguyen et al.) — e.g.
LTE adds tens of milliseconds at best and seconds under bufferbloat, DSL
interleaving adds ~10-20 ms, ethernet is sub-millisecond.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import NetworkModelError


class AccessTechnology(enum.Enum):
    """How a probe reaches its first-hop ISP."""

    ETHERNET = "ethernet"
    FIBRE = "fibre"
    CABLE = "cable"
    DSL = "dsl"
    WIFI = "wifi"
    LTE = "lte"
    SATELLITE = "satellite"

    @property
    def is_wireless(self) -> bool:
        """Wireless in the sense of the paper's Figure 7 cohort split."""
        return self in _WIRELESS

    @property
    def atlas_tag(self) -> str:
        """The user tag a probe host would apply on RIPE Atlas."""
        return _ATLAS_TAGS[self]


_WIRELESS = frozenset(
    {AccessTechnology.WIFI, AccessTechnology.LTE, AccessTechnology.SATELLITE}
)

_ATLAS_TAGS: Dict[AccessTechnology, str] = {
    AccessTechnology.ETHERNET: "ethernet",
    AccessTechnology.FIBRE: "fibre",
    AccessTechnology.CABLE: "cable",
    AccessTechnology.DSL: "dsl",
    AccessTechnology.WIFI: "wifi",
    AccessTechnology.LTE: "lte",
    AccessTechnology.SATELLITE: "satellite",
}


@dataclass(frozen=True)
class AccessProfile:
    """Latency behaviour of one access technology.

    ``floor_ms``
        Added RTT in the best observed case (the nine-month minimum
        converges to this).
    ``typical_excess_ms``
        Mean additional RTT above the floor in normal operation.
    ``spread``
        Gamma shape inverse — larger means heavier day-to-day variation.
    ``bloat_probability``
        Per-sample probability of a bufferbloat episode.
    ``bloat_scale_ms``
        Mean magnitude of a bufferbloat spike (exponentially distributed).
    """

    floor_ms: float
    typical_excess_ms: float
    spread: float
    bloat_probability: float
    bloat_scale_ms: float


PROFILES: Dict[AccessTechnology, AccessProfile] = {
    AccessTechnology.ETHERNET: AccessProfile(0.3, 0.5, 0.6, 0.004, 40.0),
    AccessTechnology.FIBRE: AccessProfile(0.8, 0.9, 0.6, 0.004, 30.0),
    AccessTechnology.CABLE: AccessProfile(4.0, 5.0, 0.8, 0.010, 60.0),
    AccessTechnology.DSL: AccessProfile(9.0, 8.0, 0.8, 0.015, 80.0),
    AccessTechnology.WIFI: AccessProfile(2.5, 9.0, 1.3, 0.030, 100.0),
    AccessTechnology.LTE: AccessProfile(18.0, 22.0, 1.1, 0.050, 150.0),
    AccessTechnology.SATELLITE: AccessProfile(480.0, 60.0, 0.5, 0.020, 120.0),
}

#: Access-technology mix of Atlas probes by country infrastructure tier.
#: Probes skew wired everywhere (they are hosted by network enthusiasts
#: and operators), but poorer infrastructure shifts mass to DSL and LTE.
TECH_MIX: Dict[int, Tuple[Tuple[AccessTechnology, float], ...]] = {
    1: (
        (AccessTechnology.ETHERNET, 0.56),
        (AccessTechnology.FIBRE, 0.14),
        (AccessTechnology.CABLE, 0.09),
        (AccessTechnology.DSL, 0.08),
        (AccessTechnology.WIFI, 0.07),
        (AccessTechnology.LTE, 0.05),
        (AccessTechnology.SATELLITE, 0.01),
    ),
    2: (
        (AccessTechnology.ETHERNET, 0.48),
        (AccessTechnology.FIBRE, 0.10),
        (AccessTechnology.CABLE, 0.10),
        (AccessTechnology.DSL, 0.14),
        (AccessTechnology.WIFI, 0.08),
        (AccessTechnology.LTE, 0.09),
        (AccessTechnology.SATELLITE, 0.01),
    ),
    3: (
        (AccessTechnology.ETHERNET, 0.40),
        (AccessTechnology.FIBRE, 0.06),
        (AccessTechnology.CABLE, 0.08),
        (AccessTechnology.DSL, 0.20),
        (AccessTechnology.WIFI, 0.10),
        (AccessTechnology.LTE, 0.14),
        (AccessTechnology.SATELLITE, 0.02),
    ),
    4: (
        (AccessTechnology.ETHERNET, 0.30),
        (AccessTechnology.FIBRE, 0.03),
        (AccessTechnology.CABLE, 0.05),
        (AccessTechnology.DSL, 0.22),
        (AccessTechnology.WIFI, 0.14),
        (AccessTechnology.LTE, 0.22),
        (AccessTechnology.SATELLITE, 0.04),
    ),
}

#: Multiplier applied to last-mile latencies per infrastructure tier —
#: the same DSLAM is slower and more congested on a tier-4 network.
TIER_SCALE: Dict[int, float] = {1: 1.0, 2: 1.15, 3: 1.35, 4: 1.6}


def profile_for(tech: AccessTechnology) -> AccessProfile:
    return PROFILES[tech]


def floor_ms(tech: AccessTechnology, tier: int) -> float:
    """Best-case added RTT of this access technology on a given tier."""
    return PROFILES[tech].floor_ms * _tier_scale(tier)


def sample_ms(
    tech: AccessTechnology, tier: int, rng: np.random.Generator, utilization: float = 0.0
) -> float:
    """One sampled last-mile RTT contribution.

    ``utilization`` in [0, 1) scales queueing: a busy evening adds more
    excess delay and makes bufferbloat more likely.
    """
    if not 0.0 <= utilization < 1.0:
        raise NetworkModelError(f"utilization must be in [0, 1): {utilization}")
    profile = PROFILES[tech]
    scale = _tier_scale(tier)
    busy = 1.0 + 1.8 * utilization
    shape = 1.0 / profile.spread
    excess = rng.gamma(shape, profile.typical_excess_ms * profile.spread) * busy
    value = (profile.floor_ms + excess) * scale
    bloat_p = profile.bloat_probability * (1.0 + 2.5 * utilization)
    if rng.random() < bloat_p:
        value += rng.exponential(profile.bloat_scale_ms)
    return value


def gamma_shape(tech: AccessTechnology) -> float:
    """Gamma shape parameter of the excess-delay draw for a technology."""
    return 1.0 / PROFILES[tech].spread


def access_ms_from_draws(
    tech: AccessTechnology,
    tier: int,
    gamma_draws: np.ndarray,
    bloat_uniforms: np.ndarray,
    bloat_exponentials: np.ndarray,
    utilization: np.ndarray,
) -> np.ndarray:
    """Last-mile RTT contributions composed from pre-drawn randomness.

    The vectorizable core of :func:`sample_ms`: ``gamma_draws`` are
    standard-gamma draws of shape :func:`gamma_shape`, ``bloat_uniforms``
    decide bufferbloat episodes, ``bloat_exponentials`` are standard
    exponentials sized to the bloat scale.  All three are ``(ticks,
    packets)``; ``utilization`` is the per-tick ``(ticks,)`` column.
    Operation order mirrors :func:`sample_ms` exactly, so one row equals a
    scalar sample built from the same draws bit for bit.
    """
    profile = PROFILES[tech]
    scale = _tier_scale(tier)
    utilization = np.asarray(utilization, dtype=np.float64)[:, None]
    busy = 1.0 + 1.8 * utilization
    excess = gamma_draws * (profile.typical_excess_ms * profile.spread) * busy
    value = (profile.floor_ms + excess) * scale
    bloat_p = profile.bloat_probability * (1.0 + 2.5 * utilization)
    bloat = np.where(
        bloat_uniforms < bloat_p, bloat_exponentials * profile.bloat_scale_ms, 0.0
    )
    return value + bloat


def choose_technology(tier: int, rng: np.random.Generator) -> AccessTechnology:
    """Draw an access technology from the tier's probe mix."""
    mix = _tier_mix(tier)
    probabilities = np.asarray([weight for _, weight in mix])
    probabilities = probabilities / probabilities.sum()
    index = rng.choice(len(mix), p=probabilities)
    return mix[index][0]


def _tier_scale(tier: int) -> float:
    try:
        return TIER_SCALE[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None


def _tier_mix(tier: int) -> Tuple[Tuple[AccessTechnology, float], ...]:
    try:
        return TECH_MIX[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None
