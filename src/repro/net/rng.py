"""Deterministic, label-derived random number streams.

Every stochastic component of the simulator draws from a stream derived
from ``(root seed, *labels)``.  Two properties follow:

* **Reproducibility** — the same seed regenerates the identical dataset,
  which the calibration tests and benchmark harnesses rely on;
* **Independence** — adding samples for one probe never shifts the stream
  of another, so experiments can be extended without perturbing results.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Label = Union[str, int]


def derive_seed(root: int, *labels: Label) -> int:
    """Derive a 64-bit child seed from a root seed and a label path."""
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(root)).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big")


def stream(root: int, *labels: Label) -> np.random.Generator:
    """A numpy Generator seeded from ``(root, *labels)``."""
    return np.random.default_rng(derive_seed(root, *labels))


def derive_seed_block(root: int, *labels: Label, count: int) -> tuple:
    """``count`` independent 64-bit child seeds from one label path.

    One blake2b pass hands out all the seeds a multi-stream consumer
    needs (vs. one hash per stream) — the per-flow stream setup of batch
    synthesis runs hundreds of thousands of times per campaign, so the
    constant factor matters.
    """
    hasher = hashlib.blake2b(digest_size=8 * count)
    hasher.update(str(int(root)).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    digest = hasher.digest()
    return tuple(
        int.from_bytes(digest[8 * i : 8 * (i + 1)], "big") for i in range(count)
    )


def fast_stream(seed: int) -> np.random.Generator:
    """A Generator from a pre-derived seed, built with minimal dispatch.

    Emits the exact bit stream ``np.random.default_rng(seed)`` would
    (same PCG64 behind the same SeedSequence), ~30% cheaper to construct
    — which matters on the per-flow hot path that builds hundreds of
    thousands of these per campaign.
    """
    return np.random.Generator(np.random.PCG64(seed))


class SeedSequenceTree:
    """Convenience wrapper: a root seed that hands out child streams.

    Example::

        tree = SeedSequenceTree(42)
        probe_rng = tree.stream("probe", probe_id)
        sample_rng = tree.stream("sample", probe_id, timestamp)
    """

    def __init__(self, root: int):
        self.root = int(root)

    def child_seed(self, *labels: Label) -> int:
        return derive_seed(self.root, *labels)

    def stream(self, *labels: Label) -> np.random.Generator:
        return stream(self.root, *labels)

    def uniform(self, low: float, high: float, *labels: Label) -> float:
        """One deterministic uniform draw identified by its label path."""
        return float(self.stream(*labels).uniform(low, high))

    def __repr__(self) -> str:
        return f"SeedSequenceTree(root={self.root})"
