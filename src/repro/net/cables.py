"""Inter-continental connectivity: gateways and cable systems.

Wide-area latency is dominated by *where traffic can physically cross
oceans*.  We model this with a graph of ~60 interconnection **gateways**
(IXP metros and submarine-cable landing stations) joined by **links** that
mirror the real circa-2019 cable map at coarse granularity:

* transatlantic: London/Paris/Lisbon <-> US East Coast;
* Latin America trombones through Miami (plus Google's Curie cable to LA);
* West Africa lands in Lisbon/London, East Africa in Marseille/Mumbai —
  the famous "African traffic detours through Europe" effect the paper's
  Figure 6 tail depends on;
* Asia interconnects via the SEA-ME-WE corridor (Marseille-Cairo-Dubai-
  Mumbai-Singapore) and the transpacific Tokyo/LA systems;
* Oceania reaches the world via Sydney-LA (Southern Cross) and
  Perth-Singapore.

Gateway-to-gateway distances are great-circle kilometres times a slack
factor (cables are never straight).  :mod:`repro.net.topology` composes
these into probe-to-datacenter routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import NetworkModelError
from repro.geo.coordinates import LatLon, haversine_km

#: Extra length of a terrestrial backbone segment over the great circle.
TERRESTRIAL_SLACK = 1.10

#: Extra length of a submarine cable over the great circle.
SUBMARINE_SLACK = 1.18


@dataclass(frozen=True)
class Gateway:
    """An interconnection metro (IXP and/or cable landing station)."""

    name: str
    country: str
    continent: str
    location: LatLon


# name: (country, continent, lat, lon)
_GATEWAYS: Dict[str, Tuple[str, str, float, float]] = {
    # Europe
    "london": ("GB", "EU", 51.51, -0.13),
    "amsterdam": ("NL", "EU", 52.37, 4.90),
    "frankfurt": ("DE", "EU", 50.11, 8.68),
    "paris": ("FR", "EU", 48.86, 2.35),
    "marseille": ("FR", "EU", 43.30, 5.37),
    "lisbon": ("PT", "EU", 38.72, -9.14),
    "madrid": ("ES", "EU", 40.42, -3.70),
    "milan": ("IT", "EU", 45.46, 9.19),
    "vienna": ("AT", "EU", 48.21, 16.37),
    "warsaw": ("PL", "EU", 52.23, 21.01),
    "stockholm": ("SE", "EU", 59.33, 18.06),
    "helsinki": ("FI", "EU", 60.17, 24.94),
    "moscow": ("RU", "EU", 55.76, 37.62),
    "kyiv": ("UA", "EU", 50.45, 30.52),
    "sofia": ("BG", "EU", 42.70, 23.32),
    "dublin": ("IE", "EU", 53.35, -6.26),
    "zurich": ("CH", "EU", 47.38, 8.54),
    "copenhagen": ("DK", "EU", 55.68, 12.57),
    "bucharest": ("RO", "EU", 44.43, 26.10),
    # North America
    "new-york": ("US", "NA", 40.71, -74.01),
    "ashburn": ("US", "NA", 39.04, -77.49),
    "miami": ("US", "NA", 25.76, -80.19),
    "chicago": ("US", "NA", 41.88, -87.63),
    "dallas": ("US", "NA", 32.78, -96.80),
    "los-angeles": ("US", "NA", 34.05, -118.24),
    "san-jose": ("US", "NA", 37.34, -121.89),
    "seattle": ("US", "NA", 47.61, -122.33),
    "toronto": ("CA", "NA", 43.65, -79.38),
    "montreal": ("CA", "NA", 45.50, -73.57),
    # Latin America
    "mexico-city": ("MX", "SA", 19.43, -99.13),
    "panama-city": ("PA", "SA", 8.98, -79.52),
    "bogota": ("CO", "SA", 4.71, -74.07),
    "fortaleza": ("BR", "SA", -3.73, -38.53),
    "sao-paulo": ("BR", "SA", -23.55, -46.63),
    "buenos-aires": ("AR", "SA", -34.60, -58.38),
    "santiago": ("CL", "SA", -33.45, -70.67),
    "lima": ("PE", "SA", -12.05, -77.04),
    # Asia
    "istanbul": ("TR", "AS", 41.01, 28.98),
    "dubai": ("AE", "AS", 25.20, 55.27),
    "mumbai": ("IN", "AS", 19.08, 72.88),
    "chennai": ("IN", "AS", 13.08, 80.27),
    "singapore": ("SG", "AS", 1.35, 103.82),
    "jakarta": ("ID", "AS", -6.21, 106.85),
    "bangkok": ("TH", "AS", 13.76, 100.50),
    "hong-kong": ("HK", "AS", 22.32, 114.17),
    "taipei": ("TW", "AS", 25.03, 121.57),
    "shanghai": ("CN", "AS", 31.23, 121.47),
    "beijing": ("CN", "AS", 39.90, 116.41),
    "seoul": ("KR", "AS", 37.57, 126.98),
    "tokyo": ("JP", "AS", 35.68, 139.69),
    "tel-aviv": ("IL", "AS", 32.09, 34.78),
    # Africa
    "cairo": ("EG", "AF", 30.04, 31.24),
    "casablanca": ("MA", "AF", 33.57, -7.59),
    "dakar": ("SN", "AF", 14.72, -17.47),
    "lagos": ("NG", "AF", 6.52, 3.38),
    "accra": ("GH", "AF", 5.60, -0.19),
    "djibouti": ("DJ", "AF", 11.59, 43.15),
    "mombasa": ("KE", "AF", -4.04, 39.67),
    "johannesburg": ("ZA", "AF", -26.20, 28.05),
    "cape-town": ("ZA", "AF", -33.92, 18.42),
    # Oceania
    "sydney": ("AU", "OC", -33.87, 151.21),
    "perth": ("AU", "OC", -31.95, 115.86),
    "auckland": ("NZ", "OC", -36.85, 174.76),
    "honolulu": ("US", "OC", 21.31, -157.86),
    "guam": ("GU", "OC", 13.44, 144.79),
    "suva": ("FJ", "OC", -18.14, 178.44),
}

GATEWAYS: Dict[str, Gateway] = {
    name: Gateway(name, country, continent, LatLon(lat, lon))
    for name, (country, continent, lat, lon) in _GATEWAYS.items()
}

# (gateway a, gateway b, kind).  kind is "terrestrial" or "submarine".
LINKS: Tuple[Tuple[str, str, str], ...] = (
    # --- European backbone mesh ---
    ("london", "amsterdam", "terrestrial"),
    ("london", "paris", "terrestrial"),
    ("london", "frankfurt", "terrestrial"),
    ("london", "dublin", "submarine"),
    ("amsterdam", "frankfurt", "terrestrial"),
    ("amsterdam", "paris", "terrestrial"),
    ("amsterdam", "copenhagen", "terrestrial"),
    ("frankfurt", "paris", "terrestrial"),
    ("frankfurt", "zurich", "terrestrial"),
    ("frankfurt", "milan", "terrestrial"),
    ("frankfurt", "vienna", "terrestrial"),
    ("frankfurt", "warsaw", "terrestrial"),
    ("frankfurt", "copenhagen", "terrestrial"),
    ("paris", "marseille", "terrestrial"),
    ("paris", "madrid", "terrestrial"),
    ("madrid", "lisbon", "terrestrial"),
    ("madrid", "marseille", "terrestrial"),
    ("marseille", "milan", "terrestrial"),
    ("milan", "vienna", "terrestrial"),
    ("milan", "sofia", "terrestrial"),
    ("vienna", "warsaw", "terrestrial"),
    ("vienna", "sofia", "terrestrial"),
    ("vienna", "bucharest", "terrestrial"),
    ("sofia", "istanbul", "terrestrial"),
    ("sofia", "bucharest", "terrestrial"),
    ("bucharest", "kyiv", "terrestrial"),
    ("warsaw", "kyiv", "terrestrial"),
    ("warsaw", "stockholm", "submarine"),
    ("copenhagen", "stockholm", "terrestrial"),
    ("stockholm", "helsinki", "submarine"),
    ("helsinki", "moscow", "terrestrial"),
    ("stockholm", "moscow", "terrestrial"),
    ("moscow", "kyiv", "terrestrial"),
    # --- Transatlantic ---
    ("london", "new-york", "submarine"),
    ("dublin", "new-york", "submarine"),
    ("paris", "ashburn", "submarine"),
    ("lisbon", "new-york", "submarine"),
    # --- North American backbone ---
    ("new-york", "ashburn", "terrestrial"),
    ("new-york", "chicago", "terrestrial"),
    ("new-york", "toronto", "terrestrial"),
    ("new-york", "montreal", "terrestrial"),
    ("ashburn", "miami", "terrestrial"),
    ("ashburn", "chicago", "terrestrial"),
    ("ashburn", "dallas", "terrestrial"),
    ("chicago", "toronto", "terrestrial"),
    ("chicago", "dallas", "terrestrial"),
    ("chicago", "seattle", "terrestrial"),
    ("dallas", "los-angeles", "terrestrial"),
    ("dallas", "miami", "terrestrial"),
    ("los-angeles", "san-jose", "terrestrial"),
    ("san-jose", "seattle", "terrestrial"),
    # --- Latin America (Miami trombone + Curie) ---
    ("mexico-city", "dallas", "terrestrial"),
    ("mexico-city", "miami", "submarine"),
    ("panama-city", "miami", "submarine"),
    ("bogota", "miami", "submarine"),
    ("bogota", "panama-city", "submarine"),
    ("lima", "panama-city", "submarine"),
    ("lima", "santiago", "terrestrial"),
    ("santiago", "los-angeles", "submarine"),  # Curie (2019)
    ("santiago", "buenos-aires", "terrestrial"),
    ("buenos-aires", "sao-paulo", "terrestrial"),
    ("sao-paulo", "fortaleza", "terrestrial"),
    ("fortaleza", "miami", "submarine"),
    ("fortaleza", "lisbon", "submarine"),  # Atlantis-2 (low capacity)
    # --- Africa ---
    ("casablanca", "lisbon", "submarine"),
    ("casablanca", "marseille", "submarine"),
    ("dakar", "lisbon", "submarine"),      # ACE
    ("dakar", "casablanca", "submarine"),
    ("accra", "dakar", "submarine"),       # WACS / ACE west coast
    ("accra", "lagos", "submarine"),
    ("lagos", "lisbon", "submarine"),      # MainOne
    ("lagos", "london", "submarine"),      # Glo-1
    ("lagos", "cape-town", "submarine"),   # WACS southern segment
    ("cape-town", "johannesburg", "terrestrial"),
    ("johannesburg", "mombasa", "terrestrial"),  # EASSy feeder route
    ("mombasa", "djibouti", "submarine"),  # EASSy
    ("mombasa", "mumbai", "submarine"),    # SEACOM
    ("djibouti", "cairo", "submarine"),    # Red Sea corridor
    ("djibouti", "dubai", "submarine"),
    ("cairo", "marseille", "submarine"),   # SEA-ME-WE landing
    ("cairo", "tel-aviv", "terrestrial"),
    # --- Middle East / South Asia (SEA-ME-WE corridor) ---
    ("marseille", "tel-aviv", "submarine"),
    ("tel-aviv", "istanbul", "terrestrial"),
    ("istanbul", "dubai", "terrestrial"),
    ("cairo", "dubai", "submarine"),
    ("dubai", "mumbai", "submarine"),
    ("mumbai", "chennai", "terrestrial"),
    ("chennai", "singapore", "submarine"),
    ("mumbai", "singapore", "submarine"),
    # --- East / Southeast Asia ---
    ("singapore", "jakarta", "submarine"),
    ("singapore", "bangkok", "terrestrial"),
    ("singapore", "hong-kong", "submarine"),
    ("bangkok", "hong-kong", "submarine"),
    ("hong-kong", "taipei", "submarine"),
    ("hong-kong", "shanghai", "terrestrial"),
    ("shanghai", "beijing", "terrestrial"),
    ("beijing", "seoul", "submarine"),
    ("shanghai", "tokyo", "submarine"),
    ("taipei", "tokyo", "submarine"),
    ("seoul", "tokyo", "submarine"),
    ("moscow", "beijing", "terrestrial"),  # TEA terrestrial (long)
    # --- Transpacific ---
    ("tokyo", "seattle", "submarine"),
    ("tokyo", "los-angeles", "submarine"),
    ("tokyo", "guam", "submarine"),
    ("hong-kong", "los-angeles", "submarine"),
    # --- Oceania ---
    ("sydney", "auckland", "submarine"),
    ("sydney", "perth", "terrestrial"),
    ("perth", "singapore", "submarine"),   # ASC
    ("sydney", "los-angeles", "submarine"),  # Southern Cross
    ("auckland", "los-angeles", "submarine"),
    ("sydney", "suva", "submarine"),
    ("suva", "honolulu", "submarine"),
    ("honolulu", "los-angeles", "submarine"),
    ("honolulu", "sydney", "submarine"),
    ("guam", "sydney", "submarine"),
    ("guam", "singapore", "submarine"),
)


def link_length_km(a: str, b: str, kind: str) -> float:
    """Cable length of a link, great-circle distance times slack."""
    try:
        ga, gb = GATEWAYS[a], GATEWAYS[b]
    except KeyError as exc:
        raise NetworkModelError(f"unknown gateway in link ({a}, {b})") from exc
    if kind == "terrestrial":
        slack = TERRESTRIAL_SLACK
    elif kind == "submarine":
        slack = SUBMARINE_SLACK
    else:
        raise NetworkModelError(f"unknown link kind {kind!r}")
    return haversine_km(*ga.location.as_tuple(), *gb.location.as_tuple()) * slack


#: Curated gateway assignments for countries whose traffic demonstrably
#: exits somewhere other than the nearest gateway (colonial-era cable
#: geography, politics, ...).  Everyone else gets the nearest gateways in
#: their continent automatically (see ``repro.net.topology``).
COUNTRY_GATEWAY_OVERRIDES: Dict[str, Tuple[str, ...]] = {
    # East African traffic exits at Mombasa (SEACOM/EASSy).
    "KE": ("mombasa",),
    "TZ": ("mombasa",),
    "UG": ("mombasa",),
    "RW": ("mombasa",),
    "BI": ("mombasa",),
    "ET": ("djibouti", "mombasa"),
    "SO": ("djibouti",),
    "MW": ("mombasa", "johannesburg"),
    "MZ": ("johannesburg", "mombasa"),
    "MG": ("mombasa",),
    "MU": ("mombasa", "johannesburg"),
    "RE": ("mombasa", "johannesburg"),
    "SC": ("mombasa",),
    # Southern Africa exits via Johannesburg / Cape Town.
    "ZA": ("johannesburg", "cape-town"),
    "ZW": ("johannesburg",),
    "ZM": ("johannesburg",),
    "BW": ("johannesburg",),
    "NA": ("johannesburg", "cape-town"),
    "LS": ("johannesburg",),
    "SZ": ("johannesburg",),
    "AO": ("cape-town", "lagos"),
    "CD": ("lagos", "johannesburg"),
    "CG": ("lagos",),
    "GA": ("lagos",),
    "CM": ("lagos",),
    # West Africa lands at Lagos / Accra / Dakar.
    "NG": ("lagos",),
    "GH": ("accra",),
    "CI": ("accra", "dakar"),
    "TG": ("accra", "lagos"),
    "BJ": ("lagos",),
    "SN": ("dakar",),
    "GM": ("dakar",),
    "GN": ("dakar",),
    "SL": ("dakar",),
    "LR": ("accra", "dakar"),
    "ML": ("dakar",),
    "BF": ("accra", "dakar"),
    "NE": ("lagos",),
    "TD": ("lagos", "cairo"),
    "MR": ("dakar", "casablanca"),
    "CV": ("dakar",),
    # North Africa lands on the Mediterranean coast.
    "MA": ("casablanca",),
    "DZ": ("casablanca", "marseille"),
    "TN": ("marseille",),
    "LY": ("cairo", "marseille"),
    "EG": ("cairo",),
    "SD": ("cairo", "djibouti"),
    "DJ": ("djibouti",),
    # Middle East.
    "IL": ("tel-aviv",),
    "PS": ("tel-aviv",),
    "JO": ("tel-aviv", "dubai"),
    "LB": ("tel-aviv", "istanbul"),
    "SY": ("istanbul",),
    "IQ": ("istanbul", "dubai"),
    "SA": ("dubai",),
    "AE": ("dubai",),
    "QA": ("dubai",),
    "BH": ("dubai",),
    "KW": ("dubai",),
    "OM": ("dubai",),
    "YE": ("djibouti", "dubai"),
    "IR": ("dubai", "istanbul"),
    # Central / South Asia.
    "PK": ("mumbai", "dubai"),
    "AF": ("dubai",),
    "IN": ("mumbai", "chennai"),
    "LK": ("chennai",),
    "BD": ("chennai", "singapore"),
    "NP": ("mumbai", "chennai"),
    "BT": ("chennai",),
    "MV": ("mumbai", "chennai"),
    "KZ": ("moscow", "istanbul"),
    "UZ": ("moscow", "istanbul"),
    "KG": ("moscow",),
    "TJ": ("moscow",),
    "TM": ("moscow", "istanbul"),
    "MN": ("beijing", "moscow"),
    # Southeast / East Asia.
    "MM": ("bangkok", "singapore"),
    "LA": ("bangkok",),
    "KH": ("bangkok", "singapore"),
    "VN": ("hong-kong", "singapore"),
    "TH": ("bangkok", "singapore"),
    "MY": ("singapore",),
    "BN": ("singapore",),
    "ID": ("jakarta", "singapore"),
    "PH": ("hong-kong", "singapore"),
    "TW": ("taipei",),
    "HK": ("hong-kong",),
    "MO": ("hong-kong",),
    "CN": ("shanghai", "beijing", "hong-kong"),
    "KR": ("seoul",),
    "JP": ("tokyo",),
    # Oceania islands.
    "NZ": ("auckland",),
    "AU": ("sydney", "perth"),
    "FJ": ("suva",),
    "VU": ("suva", "sydney"),
    "WS": ("suva", "auckland"),
    "TO": ("suva", "auckland"),
    "NC": ("sydney",),
    "PF": ("honolulu", "auckland"),
    "PG": ("sydney", "guam"),
    "GU": ("guam",),
    # Latin America / Caribbean.
    "MX": ("mexico-city",),
    "GT": ("mexico-city", "miami"),
    "BZ": ("mexico-city", "miami"),
    "HN": ("miami", "panama-city"),
    "SV": ("miami", "panama-city"),
    "NI": ("miami", "panama-city"),
    "CR": ("panama-city", "miami"),
    "PA": ("panama-city",),
    "CO": ("bogota",),
    "VE": ("miami", "bogota"),
    "EC": ("lima", "panama-city"),
    "PE": ("lima",),
    "BO": ("lima", "sao-paulo"),
    "CL": ("santiago",),
    "AR": ("buenos-aires",),
    "PY": ("buenos-aires", "sao-paulo"),
    "UY": ("buenos-aires", "sao-paulo"),
    "BR": ("sao-paulo", "fortaleza"),
    "SR": ("fortaleza", "miami"),
    "GY": ("fortaleza", "miami"),
    "CU": ("miami",),
    "JM": ("miami",),
    "HT": ("miami",),
    "DO": ("miami",),
    "BS": ("miami",),
    "BB": ("miami",),
    "TT": ("miami", "bogota"),
    "CW": ("miami", "bogota"),
    # North American islands/territories.
    "BM": ("new-york", "miami"),
    "GL": ("montreal",),
    # Europeans whose nearest gateway guess would be poor.
    "IS": ("london", "dublin"),
    "RU": ("moscow",),
    "TR": ("istanbul",),
    "CY": ("istanbul", "marseille"),
    "MT": ("milan", "marseille"),
    "GE": ("istanbul", "moscow"),
    "AM": ("istanbul", "moscow"),
    "AZ": ("istanbul", "moscow"),
}
