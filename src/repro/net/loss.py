"""Packet-loss model.

Ping measurements occasionally lose packets — more often on wireless and
on poorly provisioned networks — and sometimes entire measurements fail.
The Atlas result format reports ``sent`` and ``rcvd`` per ping, and the
sagan-style parsers in :mod:`repro.atlas.results` surface them, so the
analysis pipeline must cope with partial and empty results exactly as the
authors' tooling did.

Losses within a ping burst are **bursty**, not independent: a fade or a
queue overflow eats consecutive packets.  The burst structure follows the
classic Gilbert-Elliott two-state channel, parameterized so its
stationary loss rate equals the per-probe target probability — the
averages the calibration depends on stay put, while all-packets-lost
measurements become realistically common.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import NetworkModelError
from repro.net.lastmile import AccessTechnology

#: Baseline per-packet loss probability of the wide-area path, by the
#: probe country's infrastructure tier.
TIER_LOSS: Dict[int, float] = {1: 0.002, 2: 0.004, 3: 0.008, 4: 0.015}

#: Additional per-packet loss contributed by the access technology.
ACCESS_LOSS: Dict[AccessTechnology, float] = {
    AccessTechnology.ETHERNET: 0.000,
    AccessTechnology.FIBRE: 0.000,
    AccessTechnology.CABLE: 0.002,
    AccessTechnology.DSL: 0.003,
    AccessTechnology.WIFI: 0.010,
    AccessTechnology.LTE: 0.012,
    AccessTechnology.SATELLITE: 0.025,
}

#: Loss grows under congestion (droptail queues fill up).
_UTILIZATION_FACTOR = 2.0


def packet_loss_probability(
    tech: AccessTechnology, tier: int, utilization: float = 0.0
) -> float:
    """Per-packet loss probability for a probe of this tech and tier."""
    if not 0.0 <= utilization < 1.0:
        raise NetworkModelError(f"utilization must be in [0, 1): {utilization}")
    try:
        base = TIER_LOSS[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None
    probability = (base + ACCESS_LOSS[tech]) * (1.0 + _UTILIZATION_FACTOR * utilization)
    return min(probability, 0.5)


#: Gilbert-Elliott parameters: recovery probability out of the bad state
#: and the loss probability while in it.
_GE_RECOVERY = 0.5
_GE_BAD_LOSS = 0.75


def gilbert_elliott_losses(
    sent: int, target_loss: float, rng: np.random.Generator
) -> int:
    """Packets lost out of ``sent`` under a two-state bursty channel.

    The good->bad transition probability is solved so the chain's
    stationary loss rate equals ``target_loss``; the chain starts in its
    stationary distribution.
    """
    if sent <= 0:
        raise NetworkModelError(f"sent must be positive: {sent}")
    if not 0.0 <= target_loss < _GE_BAD_LOSS:
        target_loss = min(max(target_loss, 0.0), _GE_BAD_LOSS * 0.99)
    if target_loss == 0.0:
        return 0
    # stationary bad-state share pi = p_gb / (p_gb + p_bg);
    # loss = pi * BAD_LOSS  =>  p_gb = loss * p_bg / (BAD_LOSS - loss)
    pi_bad = target_loss / _GE_BAD_LOSS
    p_gb = pi_bad * _GE_RECOVERY / (1.0 - pi_bad)
    bad = bool(rng.random() < pi_bad)
    lost = 0
    for _ in range(sent):
        if bad and rng.random() < _GE_BAD_LOSS:
            lost += 1
        if bad:
            bad = not (rng.random() < _GE_RECOVERY)
        else:
            bad = rng.random() < p_gb
    return lost


def packets_received(
    sent: int,
    tech: AccessTechnology,
    tier: int,
    utilization: float,
    rng: np.random.Generator,
) -> int:
    """Number of echo replies received out of ``sent`` requests."""
    if sent <= 0:
        raise NetworkModelError(f"sent must be positive: {sent}")
    p_loss = packet_loss_probability(tech, tier, utilization)
    return sent - gilbert_elliott_losses(sent, p_loss, rng)


# -- fixed-layout (vectorizable) channel -----------------------------------
#
# The draw-as-you-go chain above consumes a data-dependent number of
# uniforms per burst, which pins every ping to a Python loop.  The batch
# synthesis fast path instead runs the same Gilbert-Elliott chain on a
# *fixed* block of ``2*sent + 1`` pre-drawn uniforms per burst (initial
# state, then a loss draw and a transition draw per packet, consumed
# whether or not the state needs them).  The chain's transition structure
# and stationary loss rate are untouched, and because the layout is fixed
# the uniforms for any number of bursts pool into one Generator call.


def fixed_uniforms_per_burst(sent: int) -> int:
    """Uniform draws one burst consumes under the fixed layout."""
    return 2 * sent + 1


def packet_loss_probability_batch(
    tech: AccessTechnology, tier: int, utilization: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`packet_loss_probability` over a utilization column.

    Mirrors the scalar formula operation for operation, so each element is
    bit-identical to the scalar call on the same utilization value.
    """
    try:
        base = TIER_LOSS[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None
    probability = (base + ACCESS_LOSS[tech]) * (
        1.0 + _UTILIZATION_FACTOR * np.asarray(utilization, dtype=np.float64)
    )
    return np.minimum(probability, 0.5)


def gilbert_elliott_losses_fixed(
    uniforms: np.ndarray, target_loss: np.ndarray
) -> np.ndarray:
    """Packets lost per burst, from pre-drawn fixed-layout uniforms.

    ``uniforms`` has shape ``(bursts, 2*sent + 1)`` and ``target_loss``
    shape ``(bursts,)``; returns the lost count per burst.  Row ``i``
    consumes its uniforms exactly as a scalar fixed-layout chain would,
    so scalar (one-row) and batch calls agree bitwise.
    """
    uniforms = np.atleast_2d(np.asarray(uniforms, dtype=np.float64))
    bursts, width = uniforms.shape
    if width < 3 or width % 2 == 0:
        raise NetworkModelError(
            f"fixed-layout uniforms must have 2*sent+1 columns, got {width}"
        )
    sent = (width - 1) // 2
    target_loss = np.minimum(
        np.maximum(np.asarray(target_loss, dtype=np.float64), 0.0),
        _GE_BAD_LOSS * 0.99,
    )
    pi_bad = target_loss / _GE_BAD_LOSS
    p_gb = pi_bad * _GE_RECOVERY / (1.0 - pi_bad)
    bad = uniforms[:, 0] < pi_bad
    lost = np.zeros(bursts, dtype=np.int64)
    for packet in range(sent):
        lost += bad & (uniforms[:, 1 + 2 * packet] < _GE_BAD_LOSS)
        transition = uniforms[:, 2 + 2 * packet]
        bad = np.where(bad, ~(transition < _GE_RECOVERY), transition < p_gb)
    # A zero-loss channel loses nothing; its draws are still consumed so
    # the fixed layout stays fixed.
    return np.where(target_loss == 0.0, 0, lost)
