"""Country-level transit routing on the gateway graph.

Composes the gateway/cable map of :mod:`repro.net.cables` into end-to-end
probe-to-datacenter routes:

* **domestic** traffic takes a direct route, inflated by the country's
  infrastructure tier (national backbones are never straight lines);
* **international** traffic exits through one of the country's gateways,
  rides the cable graph (all-pairs shortest paths, precomputed), and enters
  through a gateway of the destination country;
* well-connected neighbouring countries (both tier <= 2, same continent,
  close by) additionally get a **direct cross-border** candidate, modelling
  the dense peering of regions like Western Europe and North America —
  without it, a Vancouver probe would trombone through Toronto to reach an
  Oregon datacenter;
* the cheapest candidate wins.

The output of :meth:`TransitModel.route` is a :class:`Route` carrying the
effective one-way path length and the resulting floor RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

import networkx as nx

from repro.errors import NetworkModelError
from repro.geo.coordinates import LatLon
from repro.geo.countries import Country, all_countries
from repro.net import physics
from repro.net.cables import COUNTRY_GATEWAY_OVERRIDES, GATEWAYS, LINKS, link_length_km

#: Domestic path inflation over the great circle, by infrastructure tier.
DOMESTIC_INFLATION: Dict[int, float] = {1: 1.45, 2: 1.70, 3: 2.05, 4: 2.50}

#: Fixed RTT penalty (ms) for under-provisioned national/peering
#: infrastructure, charged on the probe side of every route.
TIER_PEERING_RTT_MS: Dict[int, float] = {1: 0.3, 2: 1.2, 3: 5.0, 4: 12.0}

#: Number of automatically assigned gateways for countries without a
#: curated override.
_AUTO_GATEWAYS = 2

#: Parameters of the direct cross-border candidate.
_DIRECT_MAX_KM = 2500.0
_DIRECT_MAX_TIER = 2
_DIRECT_BORDER_KM = 150.0


@dataclass(frozen=True)
class Route:
    """A resolved probe-to-target route."""

    path_km: float
    kind: str  # "domestic", "gateway" or "direct"
    via: Tuple[str, ...]
    peering_ms: float

    @property
    def floor_rtt_ms(self) -> float:
        """Minimum achievable RTT on this route (no queueing, no last mile)."""
        return physics.wire_rtt_ms(self.path_km) + self.peering_ms


class TransitModel:
    """Routing engine over the gateway graph.

    Build once, share everywhere: construction precomputes all-pairs
    shortest paths over the ~60-node gateway graph.
    """

    def __init__(self):
        self._graph = nx.Graph()
        for name in GATEWAYS:
            self._graph.add_node(name)
        for a, b, kind in LINKS:
            self._graph.add_edge(a, b, weight=link_length_km(a, b, kind))
        if not nx.is_connected(self._graph):
            components = list(nx.connected_components(self._graph))
            raise NetworkModelError(
                f"gateway graph is disconnected: {len(components)} components"
            )
        self._apsp: Dict[str, Dict[str, float]] = dict(
            nx.all_pairs_dijkstra_path_length(self._graph, weight="weight")
        )
        self._country_gateways: Dict[str, Tuple[str, ...]] = {}
        for country in all_countries():
            self._country_gateways[country.iso2] = self._assign_gateways(country)

    # -- gateway assignment -------------------------------------------------

    def _assign_gateways(self, country: Country) -> Tuple[str, ...]:
        override = COUNTRY_GATEWAY_OVERRIDES.get(country.iso2)
        if override:
            for name in override:
                if name not in GATEWAYS:
                    raise NetworkModelError(
                        f"override for {country.iso2} names unknown gateway {name!r}"
                    )
            return tuple(override)
        # A country with gateways on its own soil enters/exits through all
        # of them (a probe in Seattle peers at Seattle, not Chicago).
        domestic = tuple(
            name for name, gw in GATEWAYS.items() if gw.country == country.iso2
        )
        if domestic:
            return domestic
        candidates = [
            (country.centroid.distance_km(gw.location), name)
            for name, gw in GATEWAYS.items()
            if gw.continent == country.continent
        ]
        if not candidates:
            raise NetworkModelError(
                f"no gateway available for {country.iso2} in {country.continent}"
            )
        candidates.sort()
        return tuple(name for _, name in candidates[:_AUTO_GATEWAYS])

    def gateways_for(self, country: Country) -> Tuple[str, ...]:
        """Gateway names assigned to ``country``."""
        return self._country_gateways[country.iso2]

    def gateway_path_km(self, a: str, b: str) -> float:
        """Shortest cable path between two gateways, in kilometres."""
        try:
            return self._apsp[a][b]
        except KeyError as exc:
            raise NetworkModelError(f"unknown gateway pair ({a}, {b})") from exc

    # -- routing ------------------------------------------------------------

    def route(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
    ) -> Route:
        """Cheapest route from ``origin`` to ``target``."""
        if origin_country.iso2 == target_country.iso2:
            return self._domestic_route(origin, origin_country, target)
        candidates = [
            self._gateway_route(origin, origin_country, target, target_country)
        ]
        direct = self._direct_route(origin, origin_country, target, target_country)
        if direct is not None:
            candidates.append(direct)
        return min(candidates, key=lambda route: route.floor_rtt_ms)

    def _domestic_route(
        self, origin: LatLon, country: Country, target: LatLon
    ) -> Route:
        inflation = DOMESTIC_INFLATION[country.infra_tier]
        path_km = origin.distance_km(target) * inflation
        # Domestic traffic still pays a fraction of the tier penalty: the
        # same under-provisioned networks serve in-country routes.
        peering = 0.4 * TIER_PEERING_RTT_MS[country.infra_tier]
        return Route(path_km=path_km, kind="domestic", via=(), peering_ms=peering)

    def _gateway_route(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
    ) -> Route:
        infl_out = DOMESTIC_INFLATION[origin_country.infra_tier]
        infl_in = DOMESTIC_INFLATION[target_country.infra_tier]
        best_km = None
        best_via: Tuple[str, ...] = ()
        for gw_out in self._country_gateways[origin_country.iso2]:
            tail_out = origin.distance_km(GATEWAYS[gw_out].location) * infl_out
            for gw_in in self._country_gateways[target_country.iso2]:
                tail_in = target.distance_km(GATEWAYS[gw_in].location) * infl_in
                total = tail_out + self._apsp[gw_out][gw_in] + tail_in
                if best_km is None or total < best_km:
                    best_km = total
                    best_via = (gw_out, gw_in) if gw_out != gw_in else (gw_out,)
        peering = (
            TIER_PEERING_RTT_MS[origin_country.infra_tier]
            + 0.5 * TIER_PEERING_RTT_MS[target_country.infra_tier]
        )
        return Route(path_km=best_km, kind="gateway", via=best_via, peering_ms=peering)

    def _direct_route(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
    ) -> "Route | None":
        if origin_country.continent != target_country.continent:
            return None
        if max(origin_country.infra_tier, target_country.infra_tier) > _DIRECT_MAX_TIER:
            return None
        crow_km = origin.distance_km(target)
        if crow_km > _DIRECT_MAX_KM:
            return None
        inflation = 0.5 * (
            DOMESTIC_INFLATION[origin_country.infra_tier]
            + DOMESTIC_INFLATION[target_country.infra_tier]
        )
        path_km = crow_km * inflation + _DIRECT_BORDER_KM
        peering = (
            TIER_PEERING_RTT_MS[origin_country.infra_tier]
            + 0.5 * TIER_PEERING_RTT_MS[target_country.infra_tier]
        )
        return Route(path_km=path_km, kind="direct", via=(), peering_ms=peering)


@lru_cache(maxsize=1)
def default_transit_model() -> TransitModel:
    """Process-wide shared :class:`TransitModel` (construction is not free)."""
    return TransitModel()
