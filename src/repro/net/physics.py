"""Physical-layer constants of the latency model.

All downstream latency math composes these primitives.  The values are the
standard ones used by wide-area latency studies:

* light in fiber travels at roughly ``2/3 c`` ≈ 200 km/ms, so the RTT
  contribution of ``d`` km of one-way fiber path is ``d / 100`` ms;
* real fiber paths are longer than the great circle (routing detours,
  cable geography); we express this as multiplicative *path inflation*;
* each router hop adds a small processing/serialization delay.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import NetworkModelError

#: Propagation speed of light in fiber, km per millisecond.
FIBER_KM_PER_MS = 200.0

#: RTT milliseconds contributed per kilometre of one-way path length.
RTT_MS_PER_KM = 2.0 / FIBER_KM_PER_MS

#: Baseline inflation of fiber routes over the great-circle distance for
#: well-peered routes.  Empirical studies place median path stretch around
#: 1.2-1.5; poorly peered routes go far higher (see ``repro.net.topology``).
BASE_PATH_INFLATION = 1.25

#: RTT cost of one router hop (processing + serialization), milliseconds.
PER_HOP_RTT_MS = 0.12

#: Typical RTT spent inside the destination datacenter (load balancer,
#: virtualization) before the reply leaves again, milliseconds.
DATACENTER_INTERNAL_RTT_MS = 0.35

#: Hops are roughly logarithmic in distance: a handful for metro paths,
#: ~15-25 for intercontinental ones.
_MIN_HOPS = 4
_MAX_HOPS = 26


def propagation_rtt_ms(path_km: float) -> float:
    """RTT due to propagation over ``path_km`` of one-way fiber path."""
    if path_km < 0:
        raise NetworkModelError(f"path length must be non-negative: {path_km}")
    return path_km * RTT_MS_PER_KM


def estimate_hop_count(path_km: float) -> int:
    """Expected router hop count for a path of ``path_km`` kilometres."""
    if path_km < 0:
        raise NetworkModelError(f"path length must be non-negative: {path_km}")
    if path_km < 5.0:
        return _MIN_HOPS
    hops = _MIN_HOPS + 2.6 * math.log1p(path_km / 40.0)
    return int(min(_MAX_HOPS, round(hops)))


def hop_rtt_ms(path_km: float) -> float:
    """RTT contributed by router hops along a path of ``path_km``."""
    return estimate_hop_count(path_km) * PER_HOP_RTT_MS


def estimate_hop_counts(path_km: np.ndarray) -> np.ndarray:
    """Vectorized :func:`estimate_hop_count` over a path-length column.

    An analysis convenience (hop counts over a whole route table at
    once); the batch synthesis path never needs it because a flow's route
    — and therefore its hop count — is constant across ticks.
    """
    path_km = np.asarray(path_km, dtype=np.float64)
    if np.any(path_km < 0):
        raise NetworkModelError("path lengths must be non-negative")
    hops = _MIN_HOPS + 2.6 * np.log1p(path_km / 40.0)
    counts = np.minimum(_MAX_HOPS, np.round(hops)).astype(np.int64)
    return np.where(path_km < 5.0, _MIN_HOPS, counts)


def wire_rtt_ms(path_km: float) -> float:
    """Minimum RTT of a clean path: propagation + hops + datacenter entry.

    This is the floor the best ping over nine months converges towards;
    queueing, last-mile access and transient congestion are added on top by
    :mod:`repro.net.pathmodel`.
    """
    return (
        propagation_rtt_ms(path_km)
        + hop_rtt_ms(path_km)
        + DATACENTER_INTERNAL_RTT_MS
    )
