"""Diurnal congestion model.

Wide-area and access-network queueing follows the day/night rhythm of the
population behind the link: utilization rises through the local day, peaks
in the evening (the "Netflix hour"), and collapses at night.  The paper's
nine-month ping series inherit this pattern, which is why figures built on
*all* samples (Figure 6) have heavier tails than the minima (Figures 4/5).

Utilization maps to queueing delay with the standard M/M/1-style blow-up
``rho / (1 - rho)``, bounded to keep tail samples finite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import NetworkModelError

#: Seconds per day / hour.
DAY_S = 86_400
HOUR_S = 3_600

#: Peak local hour for residential traffic.
_PEAK_HOUR = 20.5

#: Weekday/weekend modulation: weekends shift load up slightly all day.
_WEEKEND_BOOST = 0.05


@dataclass(frozen=True)
class CongestionParams:
    """Tier-dependent congestion behaviour."""

    base_utilization: float
    diurnal_amplitude: float
    queue_scale_ms: float


#: Parameters per infrastructure tier: poorer networks run hotter and
#: queue longer.
TIER_PARAMS: Dict[int, CongestionParams] = {
    1: CongestionParams(0.22, 0.18, 1.2),
    2: CongestionParams(0.30, 0.22, 2.2),
    3: CongestionParams(0.55, 0.26, 16.0),
    4: CongestionParams(0.62, 0.28, 24.0),
}

#: Utilization ceiling: keeps the M/M/1 term finite.
_MAX_UTILIZATION = 0.93


def local_hour(timestamp: int, longitude_deg: float) -> float:
    """Approximate local time-of-day (hours) from UTC time and longitude."""
    utc_hours = (timestamp % DAY_S) / HOUR_S
    hour = (utc_hours + longitude_deg / 15.0) % 24.0
    # Floating-point modulo can land exactly on 24.0 for inputs a hair
    # below a day boundary; normalize back into [0, 24).
    return hour if hour < 24.0 else 0.0


def is_weekend(timestamp: int) -> bool:
    """True on Saturday/Sunday (Unix epoch began on a Thursday)."""
    day_index = (timestamp // DAY_S + 4) % 7  # 0 = Sunday
    return day_index in (0, 6)


def utilization(timestamp: int, longitude_deg: float, tier: int) -> float:
    """Deterministic utilization of the local network at this instant."""
    params = _params(tier)
    hour = local_hour(timestamp, longitude_deg)
    # Cosine bump centred on the evening peak.
    phase = math.cos((hour - _PEAK_HOUR) / 24.0 * 2.0 * math.pi)
    value = params.base_utilization + params.diurnal_amplitude * (phase + 1.0) / 2.0
    if is_weekend(timestamp):
        value += _WEEKEND_BOOST
    return min(value, _MAX_UTILIZATION)


def utilization_batch(
    timestamps: np.ndarray, longitude_deg: float, tier: int
) -> np.ndarray:
    """Vectorized :func:`utilization` over a timestamp column.

    Utilization depends on the timestamp only through its position in the
    day and its weekend flag, and campaign intervals divide a day, so a
    flow's ticks map onto a handful of distinct ``(day position, weekend)``
    pairs.  Each unique pair is evaluated through the *scalar* function —
    ``math.cos`` and ``np.cos`` are not guaranteed to round identically —
    and scattered back, which makes every element bit-identical to the
    scalar call by construction.
    """
    timestamps = np.asarray(timestamps, dtype=np.int64)
    day_index = (timestamps // DAY_S + 4) % 7
    weekend = (day_index == 0) | (day_index == 6)
    key = (timestamps % DAY_S) * 2 + weekend
    _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    values = np.asarray(
        [utilization(int(timestamps[i]), longitude_deg, tier) for i in first],
        dtype=np.float64,
    )
    return values[inverse]


def queue_mean_ms(rho, tier: int):
    """M/M/1 mean queueing delay at utilization ``rho`` (scalar or array)."""
    params = _params(tier)
    return params.queue_scale_ms * rho / (1.0 - rho)


def queue_delay_ms(
    timestamp: int,
    longitude_deg: float,
    tier: int,
    rng: np.random.Generator,
) -> float:
    """Sampled queueing delay for one packet at this time and place."""
    rho = utilization(timestamp, longitude_deg, tier)
    mean_ms = queue_mean_ms(rho, tier)
    # Exponential service-time variation around the M/M/1 mean.
    return float(rng.exponential(mean_ms))


def path_noise_scale_ms(path_km: float) -> float:
    """Exponential scale of core-network jitter for a path length."""
    if path_km < 0:
        raise NetworkModelError(f"path length must be non-negative: {path_km}")
    return 0.08 * math.sqrt(1.0 + path_km / 100.0)


def path_noise_ms(path_km: float, rng: np.random.Generator) -> float:
    """Small core-network jitter, growing slowly with path length."""
    return float(rng.exponential(path_noise_scale_ms(path_km)))


def _params(tier: int) -> CongestionParams:
    try:
        return TIER_PARAMS[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None
