"""End-to-end RTT composition: the :class:`LatencyModel`.

One ping RTT decomposes as::

    rtt = transit floor            (propagation + hops + peering, Route)
        * backbone path factor     (private backbones route tighter)
        + last-mile contribution   (access technology, tier, congestion)
        + queueing delay           (diurnal utilization)
        + core path noise

The *floor* — what a nine-month minimum converges towards — is the transit
floor plus the last-mile floor.  Everything else is per-sample noise drawn
from deterministic, label-derived RNG streams, so two runs with the same
seed produce the same dataset sample-for-sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import NetworkModelError
from repro.geo.coordinates import LatLon
from repro.geo.countries import Country
from repro.net import congestion, lastmile, loss
from repro.net.lastmile import AccessTechnology
from repro.net.rng import stream
from repro.net.topology import Route, TransitModel, default_transit_model


@dataclass(frozen=True)
class PingObservation:
    """Outcome of one simulated ping (a burst of echo requests)."""

    timestamp: int
    sent: int
    received: int
    rtts_ms: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.received != len(self.rtts_ms):
            raise NetworkModelError(
                f"received={self.received} but {len(self.rtts_ms)} RTTs recorded"
            )
        if self.received > self.sent:
            raise NetworkModelError("received more packets than sent")

    @property
    def succeeded(self) -> bool:
        return self.received > 0

    @property
    def rtt_min(self) -> float:
        return min(self.rtts_ms) if self.rtts_ms else float("nan")

    @property
    def rtt_max(self) -> float:
        return max(self.rtts_ms) if self.rtts_ms else float("nan")

    @property
    def rtt_avg(self) -> float:
        if not self.rtts_ms:
            return float("nan")
        return sum(self.rtts_ms) / len(self.rtts_ms)

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent


@dataclass(frozen=True)
class EndpointAdjustment:
    """Target-side adjustments (provider backbone quality, address family).

    ``path_factor`` scales the transit path length (private backbones take
    tighter routes and peer more widely); ``peering_factor`` scales the
    peering penalty; ``extra_ms`` adds a fixed RTT cost (e.g. the small
    IPv6 tunnelling/peering overhead of the late 2010s).  The defaults
    mean the IPv4 public Internet.
    """

    path_factor: float = 1.0
    peering_factor: float = 1.0
    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.path_factor <= 0 or self.peering_factor < 0 or self.extra_ms < 0:
            raise NetworkModelError(
                f"invalid adjustment: path_factor={self.path_factor}, "
                f"peering_factor={self.peering_factor}, extra_ms={self.extra_ms}"
            )


PUBLIC_INTERNET = EndpointAdjustment()


class LatencyModel:
    """The full probe-to-target latency simulator."""

    def __init__(self, seed: int = 0, transit: TransitModel = None):
        self.seed = int(seed)
        self.transit = transit if transit is not None else default_transit_model()
        # Route lookups are pure in their endpoints; pings repeat the same
        # probe-target pairs thousands of times over a campaign, so a
        # process-lifetime cache removes nearly all routing cost.
        self._route_cache = {}

    # -- deterministic components ------------------------------------------

    def route(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
    ) -> Route:
        key = (origin, origin_country.iso2, target, target_country.iso2)
        route = self._route_cache.get(key)
        if route is None:
            route = self.transit.route(origin, origin_country, target, target_country)
            self._route_cache[key] = route
        return route

    def transit_floor_ms(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
    ) -> float:
        """Floor RTT of the wide-area segment, after backbone adjustment."""
        route = self.route(origin, origin_country, target, target_country)
        adjusted = Route(
            path_km=route.path_km * adjustment.path_factor,
            kind=route.kind,
            via=route.via,
            peering_ms=route.peering_ms * adjustment.peering_factor,
        )
        return adjusted.floor_rtt_ms + adjustment.extra_ms

    def floor_rtt_ms(
        self,
        origin: LatLon,
        origin_country: Country,
        tech: AccessTechnology,
        target: LatLon,
        target_country: Country,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
    ) -> float:
        """Best RTT this probe can ever observe towards this target."""
        transit = self.transit_floor_ms(
            origin, origin_country, target, target_country, adjustment
        )
        return transit + lastmile.floor_ms(tech, origin_country.infra_tier)

    # -- sampling ------------------------------------------------------------

    def ping(
        self,
        origin: LatLon,
        origin_country: Country,
        tech: AccessTechnology,
        target: LatLon,
        target_country: Country,
        timestamp: int,
        origin_id: int,
        target_id: str,
        packets: int = 3,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
        rng=None,
    ) -> PingObservation:
        """Simulate one ping burst at ``timestamp`` (Unix seconds).

        When ``rng`` is omitted a fresh stream is derived from
        ``(seed, origin_id, target_id, timestamp)``; callers looping over
        many ticks may pass a per-flow generator instead, which is much
        faster and still deterministic given a fixed tick order.
        """
        if packets <= 0:
            raise NetworkModelError(f"packets must be positive: {packets}")
        if rng is None:
            rng = stream(self.seed, "ping", origin_id, target_id, timestamp)
        tier = origin_country.infra_tier
        transit = self.transit_floor_ms(
            origin, origin_country, target, target_country, adjustment
        )
        route = self.route(origin, origin_country, target, target_country)
        rho = congestion.utilization(timestamp, origin.lon, tier)
        received = loss.packets_received(packets, tech, tier, rho, rng)
        rtts = []
        for _ in range(received):
            access = lastmile.sample_ms(tech, tier, rng, utilization=rho)
            queue = congestion.queue_delay_ms(timestamp, origin.lon, tier, rng)
            noise = congestion.path_noise_ms(route.path_km, rng)
            rtts.append(transit + access + queue + noise)
        return PingObservation(
            timestamp=timestamp,
            sent=packets,
            received=received,
            rtts_ms=tuple(round(value, 3) for value in rtts),
        )
