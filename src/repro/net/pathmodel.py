"""End-to-end RTT composition: the :class:`LatencyModel`.

One ping RTT decomposes as::

    rtt = transit floor            (propagation + hops + peering, Route)
        * backbone path factor     (private backbones route tighter)
        + last-mile contribution   (access technology, tier, congestion)
        + queueing delay           (diurnal utilization)
        + core path noise

The *floor* — what a nine-month minimum converges towards — is the transit
floor plus the last-mile floor.  Everything else is per-sample noise drawn
from deterministic, label-derived RNG streams, so two runs with the same
seed produce the same dataset sample-for-sample.

**Draw layout (the batch-parity contract).**  Every stochastic component
of a ping burst draws from one of a flow's three family streams
(:class:`PingDrawStreams` — uniforms, gammas, exponentials) at a *fixed*
per-tick rate and a *fixed* column position.  Because rate and position
are fixed and the streams are independent,
the draws for ``n`` ticks pool into one Generator call per family, and
:meth:`LatencyModel.ping_batch` synthesizes a whole flow's RTT columns
with numpy while remaining **bit-identical** to ``n`` scalar
:meth:`LatencyModel.ping` calls consuming the same streams tick by tick.
Both paths run the same composition kernel (:func:`synthesize_blocks`);
the scalar path is simply the one-tick case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import NetworkModelError
from repro.geo.coordinates import LatLon
from repro.geo.countries import Country
from repro.net import congestion, lastmile, loss
from repro.net import rng as rng_mod
from repro.net.lastmile import AccessTechnology
from repro.net.rng import Label, stream
from repro.net.topology import Route, TransitModel, default_transit_model


def quantize_rtts(rtts_ms: np.ndarray) -> np.ndarray:
    """Quantize RTTs to the platform's reporting precision (3 decimals).

    The single quantizer both the scalar and the batch path run, so one
    sample rounds identically no matter which path produced it.
    """
    return np.round(rtts_ms, 3)


#: The three label-derived streams behind one flow, by draw family.  Per
#: tick of ``p`` packets a flow consumes ``3p+1`` uniforms (``2p+1`` for
#: bursty loss, ``p`` for bufferbloat gating), ``p`` standard gammas
#: (access excess), and ``3p`` standard exponentials (bufferbloat spike,
#: queueing, core path noise).  Draws of one family share a stream —
#: within a tick they split by *column position*, which is just as fixed
#: as a separate stream would be and costs a third of the Generator
#: setup.
_STREAM_FAMILIES = ("uniform", "gamma", "exponential")


@dataclass(frozen=True)
class PingDrawBlocks:
    """Pre-drawn randomness for ``n`` consecutive ticks of one flow."""

    loss_u: np.ndarray        # (n, 2*packets + 1)
    access_gamma: np.ndarray  # (n, packets)
    bloat_u: np.ndarray       # (n, packets)
    bloat_e: np.ndarray       # (n, packets)
    queue_e: np.ndarray       # (n, packets)
    noise_e: np.ndarray       # (n, packets)

    def __len__(self) -> int:
        return len(self.loss_u)

    def rows(self, start: int, stop: int) -> "PingDrawBlocks":
        """The sub-block for ticks ``[start, stop)``."""
        return PingDrawBlocks(
            loss_u=self.loss_u[start:stop],
            access_gamma=self.access_gamma[start:stop],
            bloat_u=self.bloat_u[start:stop],
            bloat_e=self.bloat_e[start:stop],
            queue_e=self.queue_e[start:stop],
            noise_e=self.noise_e[start:stop],
        )


def _split_draws(
    uniforms: np.ndarray,
    gammas: np.ndarray,
    exponentials: np.ndarray,
    packets: int,
) -> PingDrawBlocks:
    """Slice the per-family matrices into named component blocks.

    The single place the column layout lives: both the pooled batch draw
    and the tick-by-tick single-stream draw route through it, so the two
    consumption orders cannot drift apart.
    """
    burst = loss.fixed_uniforms_per_burst(packets)
    return PingDrawBlocks(
        loss_u=uniforms[:, :burst],
        bloat_u=uniforms[:, burst:],
        access_gamma=gammas,
        bloat_e=exponentials[:, :packets],
        queue_e=exponentials[:, packets : 2 * packets],
        noise_e=exponentials[:, 2 * packets :],
    )


class PingDrawStreams:
    """One flow's three family streams, consumed in tick order.

    Drawing blocks for ``a`` ticks and then ``b`` ticks yields the same
    arrays as drawing ``a + b`` at once (numpy Generators fill pooled
    requests sequentially), which is what lets scalar tick-by-tick
    consumption and pooled batch consumption coexist bit-identically —
    and lets a window fetch skip its pre-window prefix with one pooled
    discard instead of a per-tick loop.
    """

    __slots__ = ("_uniform", "_gamma", "_exponential")

    def __init__(self, root: int, *labels: Label):
        seeds = rng_mod.derive_seed_block(
            root, *labels, count=len(_STREAM_FAMILIES)
        )
        self._uniform = rng_mod.fast_stream(seeds[0])
        self._gamma = rng_mod.fast_stream(seeds[1])
        self._exponential = rng_mod.fast_stream(seeds[2])

    def blocks(
        self, ticks: int, packets: int, tech: AccessTechnology
    ) -> PingDrawBlocks:
        """Draw the next ``ticks`` ticks' randomness, tick-major."""
        return _split_draws(
            self._uniform.random((ticks, 3 * packets + 1)),
            self._gamma.standard_gamma(
                lastmile.gamma_shape(tech), (ticks, packets)
            ),
            self._exponential.standard_exponential((ticks, 3 * packets)),
            packets,
        )

    def skip(self, ticks: int, packets: int, tech: AccessTechnology) -> None:
        """Consume (and discard) ``ticks`` ticks' draws.

        Keeps later ticks aligned when a fetch window starts mid-flow:
        the pre-window prefix burns exactly the draws it would have used.
        """
        if ticks > 0:
            self.blocks(ticks, packets, tech)


class SingleStreamDraws:
    """Adapter: the fixed per-tick draw layout fed from one Generator.

    For callers that bring their own flow Generator (the anchor mesh, the
    core-vs-access decomposition).  The draw families interleave within a
    tick, so blocks cannot pool across ticks — scalar use only.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def blocks(
        self, ticks: int, packets: int, tech: AccessTechnology
    ) -> PingDrawBlocks:
        rng = self._rng
        shape = lastmile.gamma_shape(tech)
        rows = [
            (
                rng.random(3 * packets + 1),
                rng.standard_gamma(shape, packets),
                rng.standard_exponential(3 * packets),
            )
            for _ in range(ticks)
        ]
        return _split_draws(
            *(np.stack(cols) for cols in zip(*rows)), packets
        )

    def skip(self, ticks: int, packets: int, tech: AccessTechnology) -> None:
        if ticks > 0:
            self.blocks(ticks, packets, tech)


def synthesize_blocks(
    blocks: PingDrawBlocks,
    transit_ms: float,
    utilization: np.ndarray,
    tech: AccessTechnology,
    tier: int,
    path_km: float,
    packets: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The shared composition kernel: draws -> (received, quantized RTTs).

    Returns ``received`` of shape ``(n,)`` and the quantized per-packet
    RTT matrix of shape ``(n, packets)`` (entries beyond a tick's received
    count are surplus draws and carry no meaning).  Every arithmetic step
    mirrors the scalar component functions operation for operation, so a
    one-row call reproduces a scalar ping exactly.
    """
    p_loss = loss.packet_loss_probability_batch(tech, tier, utilization)
    lost = loss.gilbert_elliott_losses_fixed(blocks.loss_u, p_loss)
    received = packets - lost
    access = lastmile.access_ms_from_draws(
        tech, tier, blocks.access_gamma, blocks.bloat_u, blocks.bloat_e, utilization
    )
    queue = blocks.queue_e * congestion.queue_mean_ms(utilization, tier)[:, None]
    noise = blocks.noise_e * congestion.path_noise_scale_ms(path_km)
    rtts = transit_ms + access + queue + noise
    return received, quantize_rtts(rtts)


@dataclass(frozen=True)
class PingBatch:
    """Columnar outcome of one flow's ping bursts over many ticks.

    ``rtts_ms[i, :received[i]]`` are tick ``i``'s quantized echo RTTs;
    the reduced ``rtt_min`` / ``rtt_avg`` columns are NaN where the whole
    burst was lost, matching how the dataset stores failed pings.
    """

    timestamps: np.ndarray  # (n,) int64
    sent: int
    received: np.ndarray    # (n,) int64
    rtts_ms: np.ndarray     # (n, sent) float64, quantized
    rtt_min: np.ndarray     # (n,) float64, NaN on failure
    rtt_avg: np.ndarray     # (n,) float64, NaN on failure

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def succeeded(self) -> np.ndarray:
        return self.received > 0

    def observation(self, index: int) -> "PingObservation":
        """Tick ``index`` as the scalar :class:`PingObservation`."""
        received = int(self.received[index])
        return PingObservation(
            timestamp=int(self.timestamps[index]),
            sent=self.sent,
            received=received,
            rtts_ms=tuple(float(v) for v in self.rtts_ms[index, :received]),
        )


def _reduce_batch(
    timestamps: np.ndarray, packets: int, received: np.ndarray, rtts: np.ndarray
) -> PingBatch:
    """Fold a synthesized block into the columnar :class:`PingBatch`.

    The row-wise min/avg reductions run over the first ``received[i]``
    entries only (trailing entries masked to +inf / 0.0, which leaves the
    result bits untouched for finite positive RTTs), matching the scalar
    ``min`` / ``sum``-then-divide on the observation tuple exactly.
    """
    mask = np.arange(packets)[None, :] < received[:, None]
    ok = received > 0
    rtt_min = np.where(mask, rtts, np.inf).min(axis=1, initial=np.inf)
    rtt_min = np.where(ok, rtt_min, np.nan)
    totals = np.where(mask, rtts, 0.0).sum(axis=1)
    rtt_avg = np.divide(
        totals,
        received,
        out=np.full(len(received), np.nan),
        where=ok,
    )
    return PingBatch(
        timestamps=timestamps,
        sent=packets,
        received=np.asarray(received, dtype=np.int64),
        rtts_ms=rtts,
        rtt_min=rtt_min,
        rtt_avg=rtt_avg,
    )


@dataclass(frozen=True)
class PingObservation:
    """Outcome of one simulated ping (a burst of echo requests)."""

    timestamp: int
    sent: int
    received: int
    rtts_ms: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.received != len(self.rtts_ms):
            raise NetworkModelError(
                f"received={self.received} but {len(self.rtts_ms)} RTTs recorded"
            )
        if self.received > self.sent:
            raise NetworkModelError("received more packets than sent")

    @property
    def succeeded(self) -> bool:
        return self.received > 0

    @property
    def rtt_min(self) -> float:
        return min(self.rtts_ms) if self.rtts_ms else float("nan")

    @property
    def rtt_max(self) -> float:
        return max(self.rtts_ms) if self.rtts_ms else float("nan")

    @property
    def rtt_avg(self) -> float:
        if not self.rtts_ms:
            return float("nan")
        return sum(self.rtts_ms) / len(self.rtts_ms)

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent


@dataclass(frozen=True)
class EndpointAdjustment:
    """Target-side adjustments (provider backbone quality, address family).

    ``path_factor`` scales the transit path length (private backbones take
    tighter routes and peer more widely); ``peering_factor`` scales the
    peering penalty; ``extra_ms`` adds a fixed RTT cost (e.g. the small
    IPv6 tunnelling/peering overhead of the late 2010s).  The defaults
    mean the IPv4 public Internet.
    """

    path_factor: float = 1.0
    peering_factor: float = 1.0
    extra_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.path_factor <= 0 or self.peering_factor < 0 or self.extra_ms < 0:
            raise NetworkModelError(
                f"invalid adjustment: path_factor={self.path_factor}, "
                f"peering_factor={self.peering_factor}, extra_ms={self.extra_ms}"
            )


PUBLIC_INTERNET = EndpointAdjustment()


class LatencyModel:
    """The full probe-to-target latency simulator."""

    def __init__(self, seed: int = 0, transit: TransitModel = None):
        self.seed = int(seed)
        self.transit = transit if transit is not None else default_transit_model()
        # Route lookups are pure in their endpoints; pings repeat the same
        # probe-target pairs thousands of times over a campaign, so a
        # process-lifetime cache removes nearly all routing cost.
        self._route_cache = {}

    # -- deterministic components ------------------------------------------

    def route(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
    ) -> Route:
        key = (origin, origin_country.iso2, target, target_country.iso2)
        route = self._route_cache.get(key)
        if route is None:
            route = self.transit.route(origin, origin_country, target, target_country)
            self._route_cache[key] = route
        return route

    def transit_floor_ms(
        self,
        origin: LatLon,
        origin_country: Country,
        target: LatLon,
        target_country: Country,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
    ) -> float:
        """Floor RTT of the wide-area segment, after backbone adjustment."""
        route = self.route(origin, origin_country, target, target_country)
        adjusted = Route(
            path_km=route.path_km * adjustment.path_factor,
            kind=route.kind,
            via=route.via,
            peering_ms=route.peering_ms * adjustment.peering_factor,
        )
        return adjusted.floor_rtt_ms + adjustment.extra_ms

    def floor_rtt_ms(
        self,
        origin: LatLon,
        origin_country: Country,
        tech: AccessTechnology,
        target: LatLon,
        target_country: Country,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
    ) -> float:
        """Best RTT this probe can ever observe towards this target."""
        transit = self.transit_floor_ms(
            origin, origin_country, target, target_country, adjustment
        )
        return transit + lastmile.floor_ms(tech, origin_country.infra_tier)

    # -- sampling ------------------------------------------------------------

    def ping(
        self,
        origin: LatLon,
        origin_country: Country,
        tech: AccessTechnology,
        target: LatLon,
        target_country: Country,
        timestamp: int,
        origin_id: int,
        target_id: str,
        packets: int = 3,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
        rng=None,
        draws: Optional[PingDrawStreams] = None,
    ) -> PingObservation:
        """Simulate one ping burst at ``timestamp`` (Unix seconds).

        When neither ``draws`` nor ``rng`` is given a fresh stream is
        derived from ``(seed, origin_id, target_id, timestamp)``.  Callers
        looping over many ticks pass the flow's :class:`PingDrawStreams`
        as ``draws`` — consuming one tick per call, bit-identical to
        :meth:`ping_batch` over the same streams — or a plain Generator as
        ``rng`` (the legacy per-flow form, scalar-only layout).
        """
        if packets <= 0:
            raise NetworkModelError(f"packets must be positive: {packets}")
        if draws is None:
            if rng is None:
                rng = stream(self.seed, "ping", origin_id, target_id, timestamp)
            draws = SingleStreamDraws(rng)
        tier = origin_country.infra_tier
        transit = self.transit_floor_ms(
            origin, origin_country, target, target_country, adjustment
        )
        route = self.route(origin, origin_country, target, target_country)
        rho = congestion.utilization(timestamp, origin.lon, tier)
        received, rtts = synthesize_blocks(
            draws.blocks(1, packets, tech),
            transit,
            np.asarray([rho], dtype=np.float64),
            tech,
            tier,
            route.path_km,
            packets,
        )
        count = int(received[0])
        return PingObservation(
            timestamp=timestamp,
            sent=packets,
            received=count,
            rtts_ms=tuple(float(value) for value in rtts[0, :count]),
        )

    def ping_batch(
        self,
        origin: LatLon,
        origin_country: Country,
        tech: AccessTechnology,
        target: LatLon,
        target_country: Country,
        timestamps,
        origin_id: int,
        target_id: str,
        packets: int = 3,
        adjustment: EndpointAdjustment = PUBLIC_INTERNET,
        draws: Optional[PingDrawStreams] = None,
    ) -> PingBatch:
        """Simulate one flow's ping bursts at all ``timestamps`` at once.

        One numpy pass per component instead of a Python loop per tick —
        and, fed the same ``draws``, **bit-identical** to calling
        :meth:`ping` per timestamp in order (both run
        :func:`synthesize_blocks`; the utilization column routes through
        the scalar :func:`~repro.net.congestion.utilization` per unique
        time-of-day so even the transcendentals agree).  When ``draws`` is
        omitted, per-flow streams are derived from
        ``(seed, "ping", origin_id, target_id)``.
        """
        if packets <= 0:
            raise NetworkModelError(f"packets must be positive: {packets}")
        if draws is None:
            draws = PingDrawStreams(self.seed, "ping", origin_id, target_id)
        timestamps = np.asarray(timestamps, dtype=np.int64)
        tier = origin_country.infra_tier
        transit = self.transit_floor_ms(
            origin, origin_country, target, target_country, adjustment
        )
        route = self.route(origin, origin_country, target, target_country)
        rho = congestion.utilization_batch(timestamps, origin.lon, tier)
        received, rtts = synthesize_blocks(
            draws.blocks(len(timestamps), packets, tech),
            transit,
            rho,
            tech,
            tier,
            route.path_km,
            packets,
        )
        return _reduce_batch(timestamps, packets, received, rtts)
