"""Last-mile bandwidth model — the second axis of the feasibility zone.

Figure 8's blue region ("bandwidth gain zone") rests on an estimate the
paper derives from the home-broadband literature: edge aggregation starts
paying off around **1 GB generated per entity per day**, because that is
where sustained uplink demand begins to congest a typical last mile
shared by several entities.

This module makes that arithmetic explicit instead of hard-coding the
threshold: access technologies have uplink capacities, an entity may
sustainably use a fraction of the link it shares with its siblings, and
the GB/day threshold *falls out*.  The ablation bench sweeps the inputs
to show the conclusion is robust to them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import NetworkModelError
from repro.net.lastmile import AccessTechnology, TIER_SCALE

#: Sustained Mbps produced by 1 GB/day of generated data.
MBPS_PER_GB_DAY = 8_000.0 / 86_400.0  # ~0.0926


@dataclass(frozen=True)
class LinkCapacity:
    """Nominal capacity of one access link, Mbps."""

    downlink_mbps: float
    uplink_mbps: float


#: Circa-2019 nominal capacities per technology.
CAPACITIES: Dict[AccessTechnology, LinkCapacity] = {
    AccessTechnology.ETHERNET: LinkCapacity(500.0, 500.0),
    AccessTechnology.FIBRE: LinkCapacity(500.0, 250.0),
    AccessTechnology.CABLE: LinkCapacity(200.0, 20.0),
    AccessTechnology.DSL: LinkCapacity(40.0, 8.0),
    AccessTechnology.WIFI: LinkCapacity(120.0, 60.0),
    AccessTechnology.LTE: LinkCapacity(40.0, 12.0),
    AccessTechnology.SATELLITE: LinkCapacity(25.0, 4.0),
}

#: Entities sharing one access link (cameras per street cabinet,
#: sensors per gateway) in the paper's motivating scenarios.
DEFAULT_ENTITIES_PER_LINK = 8

#: Fraction of the uplink one application may sustainably consume before
#: it counts as "congesting the network" (contention, other traffic).
DEFAULT_SUSTAINABLE_SHARE = 0.10


def uplink_capacity_mbps(tech: AccessTechnology, tier: int) -> float:
    """Effective uplink of a link on a given infrastructure tier.

    Poorer tiers deliver a fraction of nominal capacity (over-subscribed
    DSLAMs, congested cells) — reuse the latency tier scale inverted.
    """
    try:
        scale = TIER_SCALE[tier]
    except KeyError:
        raise NetworkModelError(f"unknown infrastructure tier: {tier}") from None
    return CAPACITIES[tech].uplink_mbps / scale


def sustained_mbps(gb_per_day: float) -> float:
    """Sustained uplink rate of an entity generating ``gb_per_day``."""
    if gb_per_day < 0:
        raise NetworkModelError(f"volume must be non-negative: {gb_per_day}")
    return gb_per_day * MBPS_PER_GB_DAY


def bandwidth_pressure(
    gb_per_day: float,
    tech: AccessTechnology,
    tier: int,
    entities_per_link: int = DEFAULT_ENTITIES_PER_LINK,
) -> float:
    """Share of the sustainable uplink the entities on a link consume.

    Values above 1.0 mean the last mile is congested and aggregation
    before the uplink (i.e. an edge) would genuinely help.
    """
    if entities_per_link <= 0:
        raise NetworkModelError(
            f"entities_per_link must be positive: {entities_per_link}"
        )
    budget = uplink_capacity_mbps(tech, tier) * DEFAULT_SUSTAINABLE_SHARE
    demand = sustained_mbps(gb_per_day) * entities_per_link
    return demand / budget


def aggregation_threshold_gb_day(
    tech: AccessTechnology,
    tier: int,
    entities_per_link: int = DEFAULT_ENTITIES_PER_LINK,
    sustainable_share: float = DEFAULT_SUSTAINABLE_SHARE,
) -> float:
    """GB/day per entity at which the last mile congests.

    The paper's 1 GB/day figure corresponds to an LTE/DSL-class link on
    mid-tier infrastructure shared by a handful of entities.
    """
    if not 0.0 < sustainable_share <= 1.0:
        raise NetworkModelError(
            f"sustainable_share must be in (0, 1]: {sustainable_share}"
        )
    budget = uplink_capacity_mbps(tech, tier) * sustainable_share
    per_entity_mbps = budget / entities_per_link
    return per_entity_mbps / MBPS_PER_GB_DAY


def needs_aggregation(
    gb_per_day: float,
    tech: AccessTechnology = AccessTechnology.LTE,
    tier: int = 2,
    entities_per_link: int = DEFAULT_ENTITIES_PER_LINK,
) -> bool:
    """Would edge aggregation materially relieve this workload's uplink?"""
    return bandwidth_pressure(gb_per_day, tech, tier, entities_per_link) > 1.0
