"""Internet latency simulator: physics, cables, routing, last mile, noise."""

from repro.net.bandwidth import (
    CAPACITIES,
    LinkCapacity,
    aggregation_threshold_gb_day,
    bandwidth_pressure,
    needs_aggregation,
    sustained_mbps,
    uplink_capacity_mbps,
)
from repro.net.cables import GATEWAYS, LINKS, Gateway, link_length_km
from repro.net.congestion import local_hour, queue_delay_ms, utilization
from repro.net.lastmile import (
    PROFILES,
    AccessProfile,
    AccessTechnology,
    choose_technology,
    floor_ms,
    sample_ms,
)
from repro.net.loss import packet_loss_probability, packets_received
from repro.net.pathmodel import (
    PUBLIC_INTERNET,
    EndpointAdjustment,
    LatencyModel,
    PingObservation,
)
from repro.net.physics import (
    BASE_PATH_INFLATION,
    DATACENTER_INTERNAL_RTT_MS,
    FIBER_KM_PER_MS,
    PER_HOP_RTT_MS,
    RTT_MS_PER_KM,
    estimate_hop_count,
    hop_rtt_ms,
    propagation_rtt_ms,
    wire_rtt_ms,
)
from repro.net.rng import SeedSequenceTree, derive_seed, stream
from repro.net.topology import (
    DOMESTIC_INFLATION,
    TIER_PEERING_RTT_MS,
    Route,
    TransitModel,
    default_transit_model,
)

__all__ = [
    "AccessProfile",
    "AccessTechnology",
    "CAPACITIES",
    "LinkCapacity",
    "aggregation_threshold_gb_day",
    "bandwidth_pressure",
    "needs_aggregation",
    "sustained_mbps",
    "uplink_capacity_mbps",
    "BASE_PATH_INFLATION",
    "DATACENTER_INTERNAL_RTT_MS",
    "DOMESTIC_INFLATION",
    "EndpointAdjustment",
    "FIBER_KM_PER_MS",
    "GATEWAYS",
    "Gateway",
    "LINKS",
    "LatencyModel",
    "PER_HOP_RTT_MS",
    "PROFILES",
    "PUBLIC_INTERNET",
    "PingObservation",
    "RTT_MS_PER_KM",
    "Route",
    "SeedSequenceTree",
    "TIER_PEERING_RTT_MS",
    "TransitModel",
    "choose_technology",
    "default_transit_model",
    "derive_seed",
    "estimate_hop_count",
    "floor_ms",
    "hop_rtt_ms",
    "link_length_km",
    "local_hour",
    "packet_loss_probability",
    "packets_received",
    "propagation_rtt_ms",
    "queue_delay_ms",
    "sample_ms",
    "stream",
    "utilization",
    "wire_rtt_ms",
]
