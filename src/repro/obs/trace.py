"""Span tracing on the simulated clock.

A :class:`Tracer` records nested spans — ``campaign.collect`` around a
collection window, ``campaign.fetch`` around one measurement's window
fetch, ``campaign.shard`` around one parallel worker's batch — with
simulated-time start/stop read from whatever clock the owning transport
sleeps on, parent/child links from a per-thread span stack, and the
wall-clock duration attached **as an annotation only** (``wall_ms``):
simulated timings are deterministic and participate in parity checks,
wall timings exist for humans reading the trace and never feed back into
metrics or datasets.

Span ids are sequence numbers, not random — a run's trace replays
byte-identically up to the wall annotations.  Worker tracers start their
own sequences; :meth:`Tracer.adopt` re-ids a worker's finished spans
into the parent sequence (in canonical shard order) while preserving the
parent/child links inside the batch.

Traces export as JSONL (:meth:`Tracer.export_jsonl`), one span per line.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Sequence


class Tracer:
    """Span recorder for one collection context.

    ``clock`` is a zero-argument callable returning simulated seconds
    (typically ``SimulatedClock.now``); unbound tracers stamp 0.0, so a
    tracer is usable before its transport exists.
    """

    def __init__(self, clock=None):
        self._clock = clock
        self._ids = itertools.count(1)
        self._local = threading.local()
        #: Finished spans as plain dicts, in completion order (children
        #: before parents), ready to pickle across process workers.
        self.finished: List[Dict] = []
        #: Events emitted outside any open span.
        self.orphan_events: List[Dict] = []

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock spans stamp their start/stop from."""
        self._clock = clock

    def _now(self) -> float:
        return float(self._clock()) if self._clock is not None else 0.0

    def _stack(self) -> List[Dict]:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a span; nests under the thread's current span, if any."""
        stack = self._stack()
        record: Dict = {
            "span_id": next(self._ids),
            "parent_id": stack[-1]["span_id"] if stack else None,
            "name": name,
            "attrs": attrs,
            "start_sim": self._now(),
            "end_sim": None,
            "wall_ms": None,  # annotation only; never deterministic
            "events": [],
            "status": "ok",
        }
        stack.append(record)
        wall_start = time.perf_counter()
        try:
            yield record
        except BaseException:
            record["status"] = "error"
            raise
        finally:
            record["end_sim"] = self._now()
            record["wall_ms"] = round((time.perf_counter() - wall_start) * 1e3, 3)
            stack.pop()
            self.finished.append(record)

    def event(self, name: str, **attrs) -> None:
        """Attach a point event to the current span (or the trace root)."""
        record = {"name": name, "sim": self._now(), **attrs}
        stack = self._stack()
        if stack:
            stack[-1]["events"].append(record)
        else:
            self.orphan_events.append(record)

    # -- merging / export ----------------------------------------------------

    def adopt(self, spans: Sequence[Dict]) -> None:
        """Fold a worker tracer's finished spans into this sequence.

        Re-ids every span (two passes, so a parent finishing after its
        children still maps correctly) and keeps intra-batch links; a
        parent id pointing outside the batch becomes a root.
        """
        mapping = {record["span_id"]: next(self._ids) for record in spans}
        for record in spans:
            adopted = dict(record)
            adopted["span_id"] = mapping[record["span_id"]]
            adopted["parent_id"] = mapping.get(record.get("parent_id"))
            self.finished.append(adopted)

    def export(self) -> List[Dict]:
        """Finished spans in completion order (picklable)."""
        return list(self.finished)

    def export_jsonl(self, path) -> None:
        """Write the trace as JSONL, one span per line, completion order."""
        lines = []
        for record in self.finished:
            payload = dict(record)
            end = payload.get("end_sim")
            if end is not None:
                payload["duration_sim"] = round(end - payload["start_sim"], 9)
            lines.append(json.dumps(payload, sort_keys=True, default=str))
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
