"""The observability context threaded through the collection stack.

An :class:`Obs` bundles one metrics registry and one span tracer — the
unit every instrumented layer (transport, retry engine, fault injector,
platform result serving, dataset ingest, campaign collector) takes and
forwards.  The campaign owns one; its transport shares it; every
parallel worker clone gets a fresh :meth:`Obs.child` whose export is
merged back in canonical shard order, keeping snapshots deterministic at
any fixed worker count.

``NULL_OBS`` is the default everywhere: a shared, stateless no-op whose
methods cost one attribute lookup and a pass — uninstrumented runs stay
byte-for-byte on their previous hot path.  Call sites therefore never
branch on "is obs on": they call ``obs.inc(...)`` unconditionally and
the null object absorbs it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class Obs:
    """A live observability context: metrics registry + span tracer."""

    enabled = True

    def __init__(self, registry: MetricsRegistry = None, tracer: Tracer = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    def child(self) -> "Obs":
        """A fresh context for one parallel worker (merged back later)."""
        return Obs()

    def bind_clock(self, clock) -> None:
        """Point span timestamps at a simulated clock (``clock()`` -> s)."""
        self.tracer.bind_clock(clock)

    # -- metrics shortcuts ---------------------------------------------------

    def inc(self, name: str, amount=1, **labels) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value, **labels) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value, buckets=None, **labels) -> None:
        self.registry.histogram(name, buckets=buckets, **labels).observe(value)

    # -- tracing shortcuts ---------------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    # -- worker merge --------------------------------------------------------

    def export(self) -> Dict[str, object]:
        """Picklable snapshot of everything a worker context gathered."""
        return {"metrics": self.registry.export(), "spans": self.tracer.export()}

    def merge(self, exported: Optional[Dict[str, object]]) -> None:
        """Fold one worker export in (call in canonical shard order)."""
        if not exported:
            return
        self.registry.merge(exported.get("metrics") or {})
        self.tracer.adopt(exported.get("spans") or ())


class _NullSpan:
    """A reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class _NullObs:
    """The disabled context: every operation is a no-op.

    Stateless and shared, so it is safe across threads, forks, and
    :meth:`child` calls; ``registry`` and ``tracer`` are ``None`` on
    purpose — code that wants them must check :attr:`enabled` first.
    """

    enabled = False
    registry = None
    tracer = None

    __slots__ = ()

    def child(self) -> "_NullObs":
        return self

    def bind_clock(self, clock) -> None:
        pass

    def inc(self, name, amount=1, **labels) -> None:
        pass

    def set_gauge(self, name, value, **labels) -> None:
        pass

    def observe(self, name, value, buckets=None, **labels) -> None:
        pass

    def span(self, name, **attrs):
        return _NULL_SPAN

    def event(self, name, **attrs) -> None:
        pass

    def export(self) -> None:
        return None

    def merge(self, exported) -> None:
        pass


#: The shared disabled context — the default for every instrumented layer.
NULL_OBS = _NullObs()


def ensure_obs(obs) -> "Obs":
    """Normalize an optional obs argument to a usable context."""
    return obs if obs is not None else NULL_OBS
