"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

Observability for a simulation has to obey the simulation's own rules:
every value in a :meth:`MetricsRegistry.snapshot` is a pure function of
``(seed, fault profile, retry policy, worker count)``.  Wall-clock time
never enters the registry — span wall durations live in the trace
(:mod:`repro.obs.trace`) as annotations only — and histograms carry
their bucket layout from first registration, so two runs bucket
identically.

Parallel collection gives every worker transport its own registry
(:meth:`repro.atlas.api.transport.Transport.worker_clone`); the campaign
merges the exported worker registries back **in canonical shard order**
(:meth:`MetricsRegistry.merge`), which makes the merged snapshot
reproducible at any fixed worker count: counters and histograms sum,
gauges take the last merged value.

The module is stdlib-only on purpose: the instrumented layers (transport,
retry, faults, platform, dataset, campaign) must be able to import it
without dragging in anything heavier than a dict.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram layout for simulated-seconds durations (retry
#: backoff, window-fetch spans): sub-second jitter through the longest
#: maintenance cooldowns.
SIM_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0,
)

#: Default layout for per-call retry attempt counts (max_attempts is 8).
ATTEMPT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0, 8.0)

#: Canonical label tuple: sorted (key, value) string pairs.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def series_key(name: str, labels: LabelItems) -> str:
    """Canonical series string, Prometheus-style: ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _clean(value: float):
    """Ints stay ints; floats are rounded so snapshots serialize stably."""
    if isinstance(value, bool):  # pragma: no cover - guard against misuse
        return int(value)
    if isinstance(value, int):
        return value
    rounded = round(float(value), 9)
    return int(rounded) if rounded == int(rounded) else rounded


class Counter:
    """A monotonically increasing series (int or float amounts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A point-in-time series; merge semantics are last-writer-wins."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram (upper bounds are <=, plus a +Inf bucket).

    The layout is fixed at first registration of the metric *name* — a
    later registration with different buckets is an error, never a silent
    re-bucketing — so histograms from any two runs (or any two worker
    registries) are always mergeable bucket by bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelItems, buckets: Tuple[float, ...]):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError(
                f"histogram {name} needs strictly increasing buckets: {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(edge) for edge in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_dict(self) -> Dict[str, int]:
        edges = [str(_clean(edge)) for edge in self.buckets] + ["+Inf"]
        return dict(zip(edges, self.counts))


class MetricsRegistry:
    """All series of one collection context, keyed by (name, labels).

    One registry serves one single-threaded context (a campaign and its
    main transport, or one parallel worker's transport clone); contexts
    never share a registry, and worker registries are folded back with
    :meth:`merge` in canonical shard order.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._layouts: Dict[str, Tuple[float, ...]] = {}

    # -- series access -------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_items(labels))
        series = self._counters.get(key)
        if series is None:
            series = self._counters.setdefault(key, Counter(*key))
        return series

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_items(labels))
        series = self._gauges.get(key)
        if series is None:
            series = self._gauges.setdefault(key, Gauge(*key))
        return series

    def histogram(
        self, name: str, buckets: Iterable[float] = None, **labels
    ) -> Histogram:
        layout = self._layouts.get(name)
        wanted = tuple(float(b) for b in buckets) if buckets is not None else None
        if layout is None:
            layout = self._layouts.setdefault(
                name, wanted if wanted is not None else SIM_SECONDS_BUCKETS
            )
        elif wanted is not None and wanted != layout:
            raise ValueError(
                f"histogram {name} already registered with buckets {layout}, "
                f"refusing relayout to {wanted}"
            )
        key = (name, _label_items(labels))
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms.setdefault(key, Histogram(*key, layout))
        return series

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Canonical JSON-ready view: sorted series keys, stable floats."""
        return {
            "counters": {
                series_key(c.name, c.labels): _clean(c.value)
                for c in sorted(
                    self._counters.values(), key=lambda c: (c.name, c.labels)
                )
            },
            "gauges": {
                series_key(g.name, g.labels): _clean(g.value)
                for g in sorted(
                    self._gauges.values(), key=lambda g: (g.name, g.labels)
                )
            },
            "histograms": {
                series_key(h.name, h.labels): {
                    "buckets": h.bucket_dict(),
                    "sum": _clean(h.sum),
                    "count": h.count,
                }
                for h in sorted(
                    self._histograms.values(), key=lambda h: (h.name, h.labels)
                )
            },
        }

    def export(self) -> Dict[str, List]:
        """Structured, picklable form for cross-worker merging."""
        return {
            "counters": sorted(
                (c.name, c.labels, c.value) for c in self._counters.values()
            ),
            "gauges": sorted(
                (g.name, g.labels, g.value) for g in self._gauges.values()
            ),
            "histograms": sorted(
                (h.name, h.labels, h.buckets, list(h.counts), h.sum, h.count)
                for h in self._histograms.values()
            ),
        }

    def merge(self, exported: Dict[str, List]) -> None:
        """Fold one exported worker registry in (call in shard order)."""
        for name, labels, value in exported.get("counters", ()):
            self.counter(name, **dict(labels)).value += value
        for name, labels, value in exported.get("gauges", ()):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, buckets, counts, total, count in exported.get(
            "histograms", ()
        ):
            series = self.histogram(name, buckets=buckets, **dict(labels))
            for slot, bump in enumerate(counts):
                series.counts[slot] += bump
            series.sum += total
            series.count += count

    # -- Prometheus text exposition -----------------------------------------

    def to_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        lines: List[str] = []
        for counter in sorted(
            self._counters.values(), key=lambda c: (c.name, c.labels)
        ):
            if not any(line.startswith(f"# TYPE {counter.name} ") for line in lines):
                lines.append(f"# TYPE {counter.name} counter")
            lines.append(
                f"{series_key(counter.name, counter.labels)} {_clean(counter.value)}"
            )
        for gauge in sorted(self._gauges.values(), key=lambda g: (g.name, g.labels)):
            if not any(line.startswith(f"# TYPE {gauge.name} ") for line in lines):
                lines.append(f"# TYPE {gauge.name} gauge")
            lines.append(
                f"{series_key(gauge.name, gauge.labels)} {_clean(gauge.value)}"
            )
        for hist in sorted(
            self._histograms.values(), key=lambda h: (h.name, h.labels)
        ):
            if not any(line.startswith(f"# TYPE {hist.name} ") for line in lines):
                lines.append(f"# TYPE {hist.name} histogram")
            cumulative = 0
            for edge, bucket_count in zip(
                [str(_clean(e)) for e in hist.buckets] + ["+Inf"], hist.counts
            ):
                cumulative += bucket_count
                labels = hist.labels + (("le", edge),)
                lines.append(
                    f"{series_key(hist.name + '_bucket', labels)} {cumulative}"
                )
            lines.append(
                f"{series_key(hist.name + '_sum', hist.labels)} {_clean(hist.sum)}"
            )
            lines.append(
                f"{series_key(hist.name + '_count', hist.labels)} {hist.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")
