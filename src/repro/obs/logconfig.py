"""Shared structured-logging configuration for every CLI entry point.

All of the reproduction's loggers hang off the ``repro`` namespace
(``repro.campaign``, ``repro.transport``, ...).  :func:`logging_config`
is the one place that attaches a handler: every CLI subcommand routes
its ``--log-level`` / ``--json-logs`` flags here, so log shape is
uniform no matter which command runs.  Library code never configures
logging itself — importing :mod:`repro` leaves the root logger alone.

The JSON format emits one object per line with stable keys (sorted), so
campaign logs are grep-able and machine-parseable; the human format is a
conventional timestamped line.  Log records are *not* part of the
determinism surface — they carry wall timestamps — which is exactly why
anything that must be reproducible lives in the metrics registry or the
trace instead.
"""

from __future__ import annotations

import json
import logging
import sys

#: Accepted ``--log-level`` values, least to most severe.
LOG_LEVELS = ("debug", "info", "warning", "error")

_HUMAN_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record: level, logger, event, extra fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def logging_config(
    level: str = "warning", json_logs: bool = False, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root ``repro`` logger.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking a second one, so tests (and repeated CLI invocations in one
    process) never double-print.
    """
    name = str(level).lower()
    if name not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if json_logs else logging.Formatter(_HUMAN_FORMAT)
    )
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, name.upper()))
    logger.propagate = False
    return logger
