"""Deterministic telemetry for the collection stack.

Three pieces, one contract:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms whose snapshot is a pure function of ``(seed, fault
  profile, retry policy, worker count)``;
* :mod:`repro.obs.trace` — nested spans on the simulated clock, wall
  time as an annotation only, exported as JSONL;
* :mod:`repro.obs.logconfig` — the one shared logging setup behind every
  CLI subcommand's ``--log-level`` / ``--json-logs`` flags.

The :class:`Obs` context threads all of it through the hot layers;
``NULL_OBS`` (the default) makes uninstrumented runs free.
"""

from repro.obs.context import NULL_OBS, Obs, ensure_obs
from repro.obs.logconfig import LOG_LEVELS, JsonLogFormatter, logging_config
from repro.obs.metrics import (
    ATTEMPT_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.obs.trace import Tracer

__all__ = [
    "ATTEMPT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "LOG_LEVELS",
    "MetricsRegistry",
    "NULL_OBS",
    "Obs",
    "SIM_SECONDS_BUCKETS",
    "Tracer",
    "ensure_obs",
    "logging_config",
    "series_key",
]
