"""Hypothetical edge-server deployments.

The paper's discussion (§5-6) keeps asking: *if* someone deployed a
general-purpose edge, where would it sit and what would it cost?  This
module materializes the three deployment shapes that debate revolves
around:

* **gateway** — servers at the interconnection metros (the ISP/IXP edge
  the paper notes cloud providers are already moving into);
* **national** — one or more sites per country, near the population
  center (the "telco edge" of MEC standardization);
* **basestation** — compute colocated with the access network itself,
  the radical fringe of the edge vision (Hadzic et al., whom the paper
  cites, measured exactly this).

Each strategy yields :class:`EdgeSite` records that
:mod:`repro.edge.latency` can evaluate against the probe fleet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.geo.coordinates import LatLon
from repro.geo.countries import countries_with_probes
from repro.net.cables import GATEWAYS


class DeploymentStrategy(enum.Enum):
    """Where the hypothetical edge servers are placed."""

    GATEWAY = "gateway"
    NATIONAL = "national"
    BASESTATION = "basestation"


@dataclass(frozen=True)
class EdgeSite:
    """One edge-server location."""

    site_id: str
    country_code: str
    location: LatLon
    strategy: DeploymentStrategy

    @property
    def is_basestation(self) -> bool:
        return self.strategy is DeploymentStrategy.BASESTATION


#: Rough cost of building and operating one edge site for a year, in
#: thousands of USD, by the host country's infrastructure tier.  Poorer
#: infrastructure means higher build-out cost (the paper's economies-of-
#: scale argument, §5).
SITE_COST_KUSD: Dict[int, float] = {1: 180.0, 2: 220.0, 3: 290.0, 4: 400.0}


def gateway_deployment() -> Tuple[EdgeSite, ...]:
    """One edge site at every interconnection gateway (~60 sites)."""
    sites = []
    for name, gateway in GATEWAYS.items():
        sites.append(
            EdgeSite(
                site_id=f"gw:{name}",
                country_code=gateway.country,
                location=gateway.location,
                strategy=DeploymentStrategy.GATEWAY,
            )
        )
    return tuple(sites)


def national_deployment(sites_per_country: int = 1) -> Tuple[EdgeSite, ...]:
    """``sites_per_country`` edge sites in every probed country.

    The first site sits at the population center; extra sites spread on a
    ring around it (a crude national footprint).
    """
    if sites_per_country < 1:
        raise ReproError(f"sites_per_country must be >= 1: {sites_per_country}")
    from repro.atlas.population import PROBE_CENTER_OVERRIDES
    from repro.geo.coordinates import destination_point

    sites: List[EdgeSite] = []
    for country in countries_with_probes():
        override = PROBE_CENTER_OVERRIDES.get(country.iso2)
        if override:
            center = LatLon(override[0], override[1])
            ring_km = min(override[2], country.scatter_radius_km)
        else:
            center = country.centroid
            ring_km = country.scatter_radius_km
        sites.append(
            EdgeSite(
                site_id=f"nat:{country.iso2}:0",
                country_code=country.iso2,
                location=center,
                strategy=DeploymentStrategy.NATIONAL,
            )
        )
        for extra in range(1, sites_per_country):
            bearing = 360.0 * (extra - 1) / max(1, sites_per_country - 1)
            spot = destination_point(center, bearing, ring_km * 0.7)
            sites.append(
                EdgeSite(
                    site_id=f"nat:{country.iso2}:{extra}",
                    country_code=country.iso2,
                    location=spot,
                    strategy=DeploymentStrategy.NATIONAL,
                )
            )
    return tuple(sites)


def basestation_deployment() -> Tuple[EdgeSite, ...]:
    """The degenerate 'everywhere' deployment.

    Basestation colocation means every probe has a site at its own access
    point; there is no site list to enumerate, so this returns a single
    marker site per country and :mod:`repro.edge.latency` special-cases
    the strategy (RTT = last-mile + a processing hop).
    """
    return tuple(
        EdgeSite(
            site_id=f"bs:{country.iso2}",
            country_code=country.iso2,
            location=country.centroid,
            strategy=DeploymentStrategy.BASESTATION,
        )
        for country in countries_with_probes()
    )


def deployment_for(strategy: DeploymentStrategy, sites_per_country: int = 1):
    """Site list for a strategy (convenience dispatcher)."""
    if strategy is DeploymentStrategy.GATEWAY:
        return gateway_deployment()
    if strategy is DeploymentStrategy.NATIONAL:
        return national_deployment(sites_per_country)
    if strategy is DeploymentStrategy.BASESTATION:
        return basestation_deployment()
    raise ReproError(f"unknown strategy: {strategy}")  # pragma: no cover


def deployment_cost_kusd(sites: Tuple[EdgeSite, ...]) -> float:
    """Annualized cost of a deployment, thousands of USD.

    Basestation deployments are priced per *country-wide basestation
    fleet*: one marker site stands for ~N basestations, so the marker is
    multiplied out by a density factor.
    """
    from repro.geo.countries import get_country

    total = 0.0
    for site in sites:
        tier = get_country(site.country_code).infra_tier
        unit = SITE_COST_KUSD[tier]
        if site.is_basestation:
            # One compute blade per ~50 basestations, thousands of them
            # per country: two orders of magnitude above a metro site.
            unit *= 100.0
        total += unit
    return total
