"""Hypothetical edge deployments: sites, latency floors, gains over cloud."""

from repro.edge.gains import (
    GainSummary,
    cost_per_improved_user_kusd,
    deployment_gains,
    gains_by_continent,
    gains_frame,
)
from repro.edge.latency import (
    BASESTATION_PROCESSING_MS,
    edge_floor_rtt_ms,
    evaluate_deployment,
)
from repro.edge.sites import (
    SITE_COST_KUSD,
    DeploymentStrategy,
    EdgeSite,
    basestation_deployment,
    deployment_cost_kusd,
    deployment_for,
    gateway_deployment,
    national_deployment,
)

__all__ = [
    "BASESTATION_PROCESSING_MS",
    "DeploymentStrategy",
    "EdgeSite",
    "GainSummary",
    "SITE_COST_KUSD",
    "basestation_deployment",
    "cost_per_improved_user_kusd",
    "deployment_cost_kusd",
    "deployment_for",
    "deployment_gains",
    "edge_floor_rtt_ms",
    "evaluate_deployment",
    "gains_by_continent",
    "gains_frame",
    "gateway_deployment",
    "national_deployment",
]
