"""Edge-over-cloud latency gains.

The paper's §6 verdict: "General-purpose edge yields little benefit in
well-connected areas, but in developing regions, gains are more
significant."  This module computes exactly that: per-probe *gain* =
(measured best cloud RTT) - (hypothetical edge floor RTT), aggregated by
continent, plus a crude cost-effectiveness figure to back the
economies-of-scale discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.core.proximity import per_probe_min
from repro.edge.latency import evaluate_deployment
from repro.edge.sites import EdgeSite, deployment_cost_kusd
from repro.errors import ReproError
from repro.frame import Frame
from repro.net.pathmodel import LatencyModel


@dataclass(frozen=True)
class GainSummary:
    """Gain statistics for one continent."""

    continent: str
    probes: int
    median_gain_ms: float
    p90_gain_ms: float
    share_improved: float
    share_meaningful: float  # gain > 10 ms


def deployment_gains(
    dataset: CampaignDataset,
    sites: Sequence[EdgeSite],
    model: LatencyModel = None,
) -> Dict[int, float]:
    """Per-probe gain (ms) of the deployment over the measured cloud.

    Positive gain means the edge would be faster than the best cloud
    region the probe ever reached.
    """
    model = model if model is not None else LatencyModel(seed=0)
    cloud = per_probe_min(dataset)
    probes = [dataset.probe(pid) for pid in cloud]
    edge = evaluate_deployment(probes, sites, model)
    return {pid: cloud[pid] - edge[pid] for pid in cloud}


def gains_by_continent(
    dataset: CampaignDataset,
    sites: Sequence[EdgeSite],
    model: LatencyModel = None,
) -> Dict[str, GainSummary]:
    """Gain summaries grouped by probe continent."""
    gains = deployment_gains(dataset, sites, model)
    if not gains:
        raise ReproError("no probes with cloud measurements")
    grouped: Dict[str, list] = {}
    for pid, gain in gains.items():
        grouped.setdefault(dataset.probe(pid).continent, []).append(gain)
    out = {}
    for continent, values in grouped.items():
        array = np.asarray(values)
        out[continent] = GainSummary(
            continent=continent,
            probes=len(array),
            median_gain_ms=float(np.median(array)),
            p90_gain_ms=float(np.percentile(array, 90)),
            share_improved=float(np.mean(array > 0)),
            share_meaningful=float(np.mean(array > 10.0)),
        )
    return out


def gains_frame(
    dataset: CampaignDataset,
    sites: Sequence[EdgeSite],
    model: LatencyModel = None,
) -> Frame:
    """Gain summaries as a Frame, figure-order rows."""
    summaries = gains_by_continent(dataset, sites, model)
    order = ("NA", "EU", "OC", "AS", "SA", "AF")
    records = [
        {
            "continent": c,
            "probes": summaries[c].probes,
            "median_gain_ms": round(summaries[c].median_gain_ms, 2),
            "p90_gain_ms": round(summaries[c].p90_gain_ms, 2),
            "share_improved": round(summaries[c].share_improved, 3),
            "share_meaningful": round(summaries[c].share_meaningful, 3),
        }
        for c in order
        if c in summaries
    ]
    return Frame.from_records(
        records,
        columns=[
            "continent", "probes", "median_gain_ms", "p90_gain_ms",
            "share_improved", "share_meaningful",
        ],
    )


def cost_per_improved_user_kusd(
    dataset: CampaignDataset,
    sites: Sequence[EdgeSite],
    model: LatencyModel = None,
) -> float:
    """Deployment cost divided by meaningfully-improved probe count.

    A blunt instrument, but enough to show why "marked gains in latency
    are possible only via a wide and expensive deployment" (§5).
    """
    gains = deployment_gains(dataset, sites, model)
    improved = sum(1 for gain in gains.values() if gain > 10.0)
    if improved == 0:
        return float("inf")
    return deployment_cost_kusd(tuple(sites)) / improved
