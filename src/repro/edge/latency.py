"""Probe-to-edge latency evaluation.

Evaluates a hypothetical deployment against the probe fleet using the
same latency machinery as the cloud measurements, so cloud-vs-edge
comparisons are apples-to-apples:

* gateway/national sites: last-mile + domestic/gateway transit to the
  nearest site (floor RTT, i.e. the same optimistic lens as Figure 4/5);
* basestation sites: last-mile + a fixed processing hop — the best any
  network placement can ever do, which is exactly the bound the paper
  uses to argue MTP-class apps are unreachable over radio.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.atlas.probes import Probe
from repro.edge.sites import DeploymentStrategy, EdgeSite
from repro.errors import ReproError
from repro.net.lastmile import floor_ms
from repro.net.pathmodel import LatencyModel
from repro.geo.countries import get_country

#: RTT spent inside a basestation-colocated edge server (scheduling,
#: virtualization) — generous, per Hadzic et al.'s measurements.
BASESTATION_PROCESSING_MS = 1.5

#: Only sites within this many candidate evaluations are considered per
#: probe (nearest by great circle first) — a performance guard.
_CANDIDATE_SITES = 6


def edge_floor_rtt_ms(
    probe: Probe,
    sites: Sequence[EdgeSite],
    model: LatencyModel,
) -> Tuple[float, EdgeSite]:
    """Best-case RTT from ``probe`` to its best site, and that site."""
    if not sites:
        raise ReproError("no edge sites to evaluate")
    if sites[0].strategy is DeploymentStrategy.BASESTATION:
        access = floor_ms(probe.access, probe.country.infra_tier)
        marker = next(
            (s for s in sites if s.country_code == probe.country_code), sites[0]
        )
        return access + BASESTATION_PROCESSING_MS, marker

    ranked = sorted(
        sites, key=lambda site: probe.location.distance_km(site.location)
    )[:_CANDIDATE_SITES]
    best_rtt = None
    best_site = None
    for site in ranked:
        rtt = model.floor_rtt_ms(
            probe.location,
            probe.country,
            probe.access,
            site.location,
            get_country(site.country_code),
        )
        if best_rtt is None or rtt < best_rtt:
            best_rtt = rtt
            best_site = site
    return best_rtt, best_site


def evaluate_deployment(
    probes: Sequence[Probe],
    sites: Sequence[EdgeSite],
    model: LatencyModel,
) -> Dict[int, float]:
    """Floor RTT per probe id for a deployment."""
    return {
        probe.probe_id: edge_floor_rtt_ms(probe, sites, model)[0]
        for probe in probes
    }
