"""repro — reproduction of "Pruning Edge Research with Latency Shears".

A synthetic, fully offline re-implementation of the HotNets '20 measurement
study: a RIPE-Atlas-style measurement platform, an Internet latency
simulator, a catalog of 101 cloud regions from 7 providers, and the analysis
pipeline that regenerates every figure and headline statistic in the paper.

Quickstart::

    from repro.core import Campaign, CampaignScale
    campaign = Campaign.from_paper(scale=CampaignScale.SMALL, seed=7)
    dataset = campaign.run()
    report = campaign.headline_report(dataset)
    print(report.summary())
"""

__version__ = "1.0.0"
