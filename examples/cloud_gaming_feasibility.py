#!/usr/bin/env python3
"""Scenario: can the cloud already host cloud gaming, or does it need edge?

Cloud gaming is one of the paper's feasibility-zone residents: its input
lag must stay under the perceivable-latency threshold, and it streams
enough data to strain backhaul.  This example runs a campaign, then walks
the application through the paper's section 5 reasoning for every
continent: does measured cloud latency meet the requirement, would an edge
placement help, or is the app infeasible over any network?

Usage::

    python examples/cloud_gaming_feasibility.py
"""

from repro.apps import FeasibilityZone, assess, get_application
from repro.core import (
    Campaign,
    CampaignScale,
    app_verdict_for_continent,
    edge_beneficiaries,
    feasibility_matrix,
    measured_latency,
)
from repro.viz import table


def main() -> None:
    gaming = get_application("cloud-gaming")
    zone = FeasibilityZone()
    print(f"Application: {gaming.name}")
    print(f"  latency requirement : {gaming.latency_low_ms:.0f}-"
          f"{gaming.latency_high_ms:.0f} ms")
    print(f"  data generated      : {gaming.bandwidth_low_gb_day:.1f}-"
          f"{gaming.bandwidth_high_gb_day:.1f} GB/day per entity")
    print(f"  static FZ verdict   : {assess(gaming, zone).value}")
    print(f"  FZ overlap          : {zone.overlap(gaming):.0%}\n")

    print("Running campaign (TINY scale)...")
    dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=11).run()

    print("\nPer-continent verdict for cloud gaming:")
    for continent, latency in sorted(measured_latency(dataset).items()):
        verdict = app_verdict_for_continent(gaming, latency, zone)
        print(f"  {continent}: median cloud RTT {latency.median:6.1f} ms "
              f"(p25 {latency.p25:6.1f}) -> {verdict}")

    print("\nApplications a real edge deployment would actually help:")
    for slug in edge_beneficiaries(dataset):
        print(f"  - {get_application(slug).name}")

    print("\nFull feasibility matrix (Figure 8 companion):")
    print(table(feasibility_matrix(dataset)))


if __name__ == "__main__":
    main()
