#!/usr/bin/env python3
"""Scenario: how much does the wireless last mile cost? (Figure 7)

Replays the paper's section 4.3 cohort study: probes tagged wired
(ethernet/broadband/...) versus probes tagged wireless (lte/wifi/wlan),
both measured to their nearest cloud region, tracked over the campaign.

Usage::

    python examples/wireless_last_mile.py
"""

import math

from repro.core import (
    Campaign,
    CampaignScale,
    added_wireless_latency_ms,
    cohort_sizes,
    cohort_timeseries,
    wireless_penalty,
)
from repro.viz import line_chart


def main() -> None:
    print("Running campaign (TINY scale)...")
    dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=13).run()

    wired, wireless = cohort_sizes(dataset)
    print(f"\nCohorts after tag filtering and baseline sanity checks:")
    print(f"  wired probes   : {wired}")
    print(f"  wireless probes: {wireless}")

    penalty = wireless_penalty(dataset)
    added = added_wireless_latency_ms(dataset)
    print(f"\nWireless penalty : {penalty:.2f}x  (paper: ~2.5x)")
    print(f"Added latency    : {added:.1f} ms  (prior studies: 10-40 ms)")

    frame = cohort_timeseries(dataset, bucket_s=86_400)
    series = {"wired": [], "lte/wifi": []}
    start = float(frame["bucket_start"][0])
    for row in frame.iter_rows():
        day = (float(row["bucket_start"]) - start) / 86_400
        if not math.isnan(row["wired_median"]):
            series["wired"].append((day, float(row["wired_median"])))
        if not math.isnan(row["wireless_median"]):
            series["lte/wifi"].append((day, float(row["wireless_median"])))

    print("\nMedian RTT to nearest region over the campaign (days):")
    print(line_chart(series))


if __name__ == "__main__":
    main()
