#!/usr/bin/env python3
"""Per-country cloud-reachability report.

Answers Figure 4's question for one country: with what latency can it
reach the nearest cloud datacenter, which region wins, and how do its
probes compare to the continent?

Usage::

    python examples/country_report.py [ISO2]    # default: KE (Kenya)
"""

import sys

import numpy as np

from repro.apps import strictest_satisfied
from repro.core import Campaign, CampaignScale
from repro.core.filtering import unprivileged_mask
from repro.geo import get_country


def main() -> None:
    iso2 = (sys.argv[1] if len(sys.argv) > 1 else "KE").upper()
    country = get_country(iso2)
    print(f"=== {country.name} ({iso2}) ===")
    print(f"continent: {country.continent}  infra tier: {country.infra_tier}  "
          f"atlas probes: {country.atlas_probes}")

    print("\nRunning campaign (SMALL scale, ~20s)...")
    dataset = Campaign.from_paper(scale=CampaignScale.SMALL, seed=17).run()

    mask = unprivileged_mask(dataset) & (dataset.probe_countries() == iso2)
    if not np.any(mask):
        raise SystemExit(f"no valid samples for {iso2} at this scale")
    rtts = dataset.column("rtt_min")[mask]
    targets = dataset.column("target_index")[mask]

    print(f"\nsamples: {len(rtts):,}")
    print(f"min RTT : {rtts.min():7.1f} ms   "
          f"(threshold met: {strictest_satisfied(float(rtts.min()))})")
    print(f"median  : {np.median(rtts):7.1f} ms")
    print(f"p95     : {np.percentile(rtts, 95):7.1f} ms")

    print("\nFive best-reachable regions:")
    by_target = {}
    for target_index, rtt in zip(targets, rtts):
        record = by_target.setdefault(int(target_index), [])
        record.append(rtt)
    ranked = sorted(
        (float(np.min(values)), index) for index, values in by_target.items()
    )
    for best, index in ranked[:5]:
        region = dataset.targets[index].region
        print(f"  {best:7.1f} ms  {region.key:28s} ({region.city}, "
              f"{region.country_code})")

    continent_mask = unprivileged_mask(dataset) & (
        dataset.probe_continents() == country.continent
    )
    continent_median = float(np.median(dataset.column("rtt_min")[continent_mask]))
    print(f"\ncontinent ({country.continent}) median for comparison: "
          f"{continent_median:.1f} ms")


if __name__ == "__main__":
    main()
