#!/usr/bin/env python3
"""Drive the Atlas client API directly (the cousteau/sagan workflow).

This is the code a researcher would have written against the real
platform: create a ping and a TCP traceroute measurement towards one
region, stream the results, and parse them with the sagan-style parsers.
The TCP traceroute exercises the paper's planned future-work extension
(section 5, "TCP-based probing techniques").

Usage::

    python examples/custom_measurement.py [region-key]
"""

import sys

from repro.atlas import AtlasPlatform
from repro.atlas.api import (
    AtlasCreateRequest,
    AtlasResultsRequest,
    AtlasSource,
    AtlasStream,
    Ping,
    Traceroute,
)
from repro.atlas.results import PingResult, Result, TracerouteResult
from repro.cloud import vm_for_region

DAY = 86_400
T0 = 1_567_296_000


def main() -> None:
    region_key = sys.argv[1] if len(sys.argv) > 1 else "aws:eu-central-1"
    platform = AtlasPlatform(seed=21)
    target = platform.hostname_for(vm_for_region(region_key))
    print(f"Target: {target}")

    sources = [
        AtlasSource(
            type="country", value="DE", requested=5,
            tags_exclude=("datacentre", "cloud"),
        )
    ]
    ok, response = AtlasCreateRequest(
        measurements=[
            Ping(target=target, description="custom ping", interval=21_600),
            Traceroute(
                target=target, description="tcp traceroute", interval=43_200,
                protocol="TCP", port=443,
            ),
        ],
        sources=sources,
        start_time=T0,
        stop_time=T0 + DAY,
        platform=platform,
    ).create()
    if not ok:
        raise SystemExit(f"creation failed: {response}")
    ping_id, trace_id = response["measurements"]
    print(f"Created measurements: ping={ping_id}, traceroute={trace_id}\n")

    ok, raw_results = AtlasResultsRequest(msm_id=ping_id, platform=platform).create()
    assert ok
    print(f"Ping results: {len(raw_results)}")
    for raw in raw_results[:5]:
        parsed = Result.get(raw)
        assert isinstance(parsed, PingResult)
        print(f"  probe {parsed.probe_id}: min={parsed.rtt_min} ms "
              f"median={parsed.rtt_median} ms loss={parsed.packet_loss:.0%}")

    print("\nStreaming traceroute results:")
    stream = AtlasStream(platform=platform)
    shown = 0

    def on_result(raw: dict) -> None:
        nonlocal shown
        if shown >= 3:
            return
        parsed = Result.get(raw)
        assert isinstance(parsed, TracerouteResult)
        print(f"  probe {parsed.probe_id}: {parsed.total_hops} hops, "
              f"last rtt {parsed.last_rtt} ms, "
              f"destination responded: {parsed.destination_ip_responded}")
        shown += 1

    stream.bind_channel("atlas_result", on_result)
    stream.start_stream(stream_type="result", msm=trace_id)
    delivered = stream.timeout()
    print(f"  ... {delivered} results streamed in total")

    account = platform.accounts["REPRO-0000-DEFAULT-KEY"]
    print(f"\nCredits spent: {account.spent_total:,}")


if __name__ == "__main__":
    main()
