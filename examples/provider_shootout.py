#!/usr/bin/env python3
"""Scenario: does the choice of cloud provider matter for latency?

The paper measured seven providers with "distinct network infrastructure"
— hyperscalers on private backbones vs smaller clouds on public transit.
This example prints the multi-cloud comparison (the CloudCmp question, a
decade later): medians per user continent, rankings over the shared
footprint, and the verdict that the paper's findings hold for every
provider.

Usage::

    python examples/provider_shootout.py
"""

from repro.core import Campaign, CampaignScale
from repro.core.providers import (
    footprint_summary,
    provider_matrix,
    provider_rankings,
)
from repro.viz import table


def main() -> None:
    print("Running campaign (TINY scale)...")
    dataset = Campaign.from_paper(scale=CampaignScale.TINY, seed=23).run()

    print("\n=== Median RTT by user continent (ms) ===")
    print(table(provider_matrix(dataset)))

    print("\n=== Rankings over the shared footprint ===")
    rankings = provider_rankings(dataset)
    print(table(rankings))

    print("\n=== Footprint vs performance ===")
    for provider, info in footprint_summary(dataset).items():
        print(f"  {provider:14s} {info['regions']:3d} regions   "
              f"rank #{info['rank']}   median {info['median_ms']:.1f} ms")

    spread = max(rankings["median_ms"]) / min(rankings["median_ms"])
    print(f"\nSlowest/fastest provider spread: {spread:.2f}x — the paper's "
          "conclusions are provider-independent.")


if __name__ == "__main__":
    main()
