#!/usr/bin/env python3
"""Scenario: has the bottleneck moved from the core to the last mile?

Edge computing was conceived when the core network was the bottleneck
(circa 2009); the paper's premise is that a decade of backbone build-out
inverted that.  This example uses the anchor mesh (wired, datacenter-
grade endpoints: core-only RTT) against home probes reaching the same
datacenter countries, and splits each path into core and access shares.

Usage::

    python examples/core_vs_lastmile.py
"""

from repro.atlas import AtlasPlatform
from repro.core.corevsaccess import survey
from repro.viz import table

T0 = 1_567_296_000
TIMESTAMPS = [T0 + k * 21_600 for k in range(8)]

#: (probe country, datacenter country) pairs spanning the regimes the
#: paper discusses: metro-local, continental, and intercontinental.
PAIRS = (
    ("DE", "DE"),   # Frankfurt metro
    ("FR", "DE"),   # western-EU continental
    ("PL", "DE"),   # eastern-EU continental
    ("UA", "DE"),   # EU periphery
    ("DE", "US"),   # transatlantic
    ("BR", "US"),   # Miami trombone
)


def main() -> None:
    platform = AtlasPlatform(seed=9)
    print("Decomposing core vs last-mile latency via the anchor mesh...\n")
    frame = survey(platform, PAIRS, TIMESTAMPS)
    print(table(frame))
    print(
        "\nReading: within well-connected regions the core is a handful of\n"
        "milliseconds and the *wireless* access dominates (bottleneck =\n"
        "access) — the situation that obsoletes edge's original latency\n"
        "argument.  Only on long-haul paths does the core dominate again,\n"
        "and no edge placement shortens those."
    )


if __name__ == "__main__":
    main()
