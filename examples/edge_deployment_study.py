#!/usr/bin/env python3
"""Scenario: where would deploying edge servers actually help?

The paper's section 6 argues edge deployments pay off in developing
regions, not in the well-connected ones driving the hype.  This example
evaluates three hypothetical deployments against a measured campaign:

* ~60 servers at the interconnection gateways (the ISP/IXP edge);
* one server per country near the population center (the telco edge);
* compute colocated with every basestation (the radical vision).

Usage::

    python examples/edge_deployment_study.py
"""

from repro.core import Campaign, CampaignScale
from repro.core.pathdecomp import (
    access_share_by_cohort,
    decompose_all,
    run_traceroute_survey,
)
from repro.edge import (
    basestation_deployment,
    cost_per_improved_user_kusd,
    gains_frame,
    gateway_deployment,
    national_deployment,
)
from repro.viz import table


def main() -> None:
    print("Running campaign (TINY scale)...")
    campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=19)
    dataset = campaign.run()

    for name, sites in (
        ("gateway edge (~60 IXP metros)", gateway_deployment()),
        ("national edge (1 site/country)", national_deployment(1)),
        ("basestation colocation", basestation_deployment()),
    ):
        cost = cost_per_improved_user_kusd(dataset, sites)
        print(f"\n=== {name}: {len(sites)} sites, "
              f"{cost:,.0f} kUSD per improved probe ===")
        print(table(gains_frame(dataset, sites)))

    print("\n=== Where is the delay? (TCP traceroute decomposition) ===")
    platform = campaign.platform
    wired = [p.probe_id for p in platform.filter_probes(tags=["ethernet"])][:10]
    wireless = [p.probe_id for p in platform.filter_probes(tags=["lte"])][:10]
    results = run_traceroute_survey(
        platform,
        ["aws:eu-central-1", "azure:westeurope"],
        wired + wireless,
        campaign.start_time,
    )
    print(table(access_share_by_cohort(platform, decompose_all(results))))
    print("\nReading: on wireless probes the access network dominates the "
          "path RTT,\nso even a basestation-colocated edge cannot beat the "
          "radio's own latency floor.")


if __name__ == "__main__":
    main()
