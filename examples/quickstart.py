#!/usr/bin/env python3
"""Quickstart: run a reduced campaign and print the paper's headline results.

Reproduces, at small scale, the measurement study of "Pruning Edge Research
with Latency Shears" (HotNets '20): 3200+ synthetic RIPE Atlas probes ping
101 cloud regions, and the analysis answers whether the cloud is already
"close enough".

Usage::

    python examples/quickstart.py [seed]
"""

import sys
import time

from repro.core import (
    Campaign,
    CampaignScale,
    headline_report,
    min_rtt_cdf_by_continent,
)
from repro.viz import cdf_plot


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print("Building platform and running a TINY campaign "
          "(one probe per country, 4 days)...")
    started = time.time()
    campaign = Campaign.from_paper(scale=CampaignScale.TINY, seed=seed)
    dataset = campaign.run()
    print(f"Collected {dataset.num_samples:,} ping samples "
          f"in {time.time() - started:.1f}s\n")

    report = headline_report(dataset)
    print("=== Headline results (paper section 4) ===")
    print(report.summary())

    print("\n=== Figure 5: CDF of minimum RTT per probe, by continent ===")
    print(cdf_plot(min_rtt_cdf_by_continent(dataset), x_max=200.0))

    print("\n=== Paper vs. measured ===")
    for claim, values in report.paper_comparison().items():
        print(f"  {claim:36s} paper={values['paper']:<8.2f} "
              f"measured={values['measured']:.2f}")


if __name__ == "__main__":
    main()
