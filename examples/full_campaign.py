#!/usr/bin/env python3
"""Run a full-size campaign and export the public-dataset artifacts.

The paper collected ~3.2 M datapoints over nine months and published the
raw dataset [18].  ``--scale medium`` reproduces a dataset of roughly
that size (~3-6 M samples, several minutes of CPU); ``--scale full`` runs
the complete nine-month methodology (hours).  The default ``small`` keeps
the demo under a minute.

Exports:
  out/dataset.csv        the raw sample table
  out/fig4.json .. fig7.json   per-figure data bundles

Usage::

    python examples/full_campaign.py [--scale tiny|small|medium|full] [--out DIR]
"""

import argparse
import time
from pathlib import Path

from repro.core import (
    Campaign,
    CampaignScale,
    all_samples_cdf_by_continent,
    cohort_timeseries,
    country_min_latency,
    headline_report,
    min_rtt_cdf_by_continent,
)
from repro.viz import ecdf_payload, export_figure, frame_payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=[scale.label for scale in CampaignScale],
        default="small",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=Path, default=Path("out"))
    args = parser.parse_args()

    scale = next(s for s in CampaignScale if s.label == args.scale)
    print(f"Scale {scale.label}: interval {scale.interval_s}s, "
          f"{scale.duration_days} days, probe fraction {scale.probe_fraction}")

    started = time.time()
    campaign = Campaign.from_paper(scale=scale, seed=args.seed)
    dataset = campaign.run()
    print(f"Collected {dataset.num_samples:,} samples "
          f"in {time.time() - started:.1f}s")
    print(dataset.integrity_report())

    args.out.mkdir(parents=True, exist_ok=True)
    print(f"\nExporting artifacts to {args.out}/ ...")
    dataset.export_csv(args.out / "dataset.csv")

    country_frame = country_min_latency(dataset)
    export_figure(
        args.out / "fig4.json",
        figure="fig4-choropleth",
        data=frame_payload(country_frame),
        notes="per-country minimum RTT to any datacenter",
    )
    export_figure(
        args.out / "fig5.json",
        figure="fig5-min-rtt-cdf",
        data=ecdf_payload(min_rtt_cdf_by_continent(dataset)),
        notes="CDF of per-probe minimum RTT by continent",
    )
    export_figure(
        args.out / "fig6.json",
        figure="fig6-all-samples-cdf",
        data=ecdf_payload(all_samples_cdf_by_continent(dataset)),
        notes="CDF of all ping samples by continent",
    )
    export_figure(
        args.out / "fig7.json",
        figure="fig7-wired-vs-wireless",
        data=frame_payload(cohort_timeseries(dataset)),
        notes="weekly median RTT of wired vs wireless cohorts",
    )

    print("\n" + headline_report(dataset).summary())
    print(f"\nDone. Artifacts in {args.out.resolve()}")


if __name__ == "__main__":
    main()
